"""Pluggable execution backends for the MapReduce simulator.

The paper's whole point is *parallel* progressive ER, yet virtual time says
nothing about wall-clock time: the simulator historically ran every task of
every phase serially in one Python process.  This module separates the two
concerns:

* the **per-task computation** (:func:`compute_map_task` /
  :func:`compute_reduce_task`) is a pure function of ``(job, input split,
  task id, cost model)`` — it produces a :class:`MapTaskPayload` /
  :class:`ReduceTaskPayload` holding the task's virtual cost, local-time
  events, outputs and counters;
* the **accounting** (slot scheduling, event rebasing, counter aggregation,
  partitioning) stays in :class:`repro.mapreduce.engine.Cluster`, which
  replays the payloads through its :class:`~repro.mapreduce.engine.SlotPool`
  in task-id order.

An :class:`Executor` only decides *where* the per-task computations run:

* :class:`SerialExecutor` — in-process, one task at a time (the default);
* :class:`ParallelExecutor` — fans tasks out to long-lived forked worker
  processes that pull tasks from a shared queue for the duration of one
  *job* (both phases), moving bulk bytes through shared memory and keeping
  an adaptive serial fallback for phases too small to pay for IPC.

Parallel runtime design
-----------------------
The engine brackets every job with :meth:`Executor.begin_job` /
:meth:`Executor.end_job`.  For the parallel backend that means:

* **one fork per job, not per phase** — the job (full of lambdas and
  schedule objects, so never picklable) and its map splits are stashed in a
  module global before the workers fork; workers inherit everything
  copy-on-write and both phases run through the same workers.  Workers are
  spawned lazily, so a job whose phases all fall under the serial floor
  never forks at all.
* **pull-based work stealing** — tasks are not pre-assigned: the driver
  enqueues task descriptors (reduce units heaviest-first, integrating the
  balance shards of skewed schedules) on one shared queue and every idle
  worker pulls the next one.  A slow worker simply pulls less; a fast one
  "steals" the work a static round-robin split would have pinned
  elsewhere.  ``steal_tasks`` counts tasks that ran on a different worker
  than round-robin would have chosen, ``worker_idle_ms`` sums the time
  workers spent blocked on the queue.
* **shared-memory data plane, descriptor control plane** — bulk bytes
  never cross the queue pipe.  Reduce inputs (which only exist in the
  driver — they are map outputs) are wire-encoded once into a single
  per-phase :mod:`multiprocessing.shared_memory` segment; each task
  message carries only ``(segment name, offset, length)``.  Result
  payloads travel back through a per-worker shared-memory arena the same
  way, with a small descriptor on the results queue.  ``ipc_*_bytes``
  therefore count only descriptors; ``shm_*_bytes`` count the bulk bytes
  that moved through shared memory, and ``payload_wire_bytes`` the encoded
  payload size independent of transport.  Platforms without working shared
  memory degrade to inline blobs on the queues (results identical).
* **slim wire format** — payloads and shipped reduce inputs are encoded by
  :mod:`repro.mapreduce.wire` rather than as plain dataclass pickles,
  whether they land in shared memory or inline; with ``profile_wire`` on,
  the plain-pickle baseline is measured too (``ipc_payload_raw_bytes``).
* **adaptive serial fallback** — a phase whose estimated virtual cost is
  below :attr:`ParallelExecutor.serial_floor` runs in-process: the
  dispatch overhead would exceed the fanned-out compute.

Determinism contract
--------------------
Both backends produce **bit-for-bit identical** job results: the payload of
a task depends only on the task's inputs (tasks never share mutable state —
each gets a fresh mapper/reducer from its factory), floating-point virtual
costs are computed by the same pure Python code in either process, the wire
encoding is lossless, and the driver consumes payloads in task-id order
regardless of the order workers finish in.  Wall-clock time — and the
`driver.*` performance statistics that describe it — is the only observable
difference, which is why those statistics live in the metrics registry and
never inside job counters.

Fault injection keeps the contract for free: every fault decision (seeded
crashes, straggler slowdowns, speculation — see
:mod:`repro.mapreduce.faults`) is made *in the driver* from the plan's seed
and the payloads' virtual costs, never inside a worker and never from
wall-clock time, so a faulty run is just as backend-independent as a clean
one.

Worker serialization caveats
----------------------------
Jobs routinely close over lambdas and rich schedule objects, so the job is
*not* pickled to workers; the parallel backend requires the POSIX ``fork``
start method.  Task results (and shipped reduce inputs) cross the pipe
wire-encoded, so everything a mapper emits, a reducer writes, and every
event payload must be picklable.  On platforms without ``fork`` the
parallel backend transparently degrades to in-process execution (results
are identical either way).
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import queue as queue_module
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

try:
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - always present on CPython >= 3.8
    _shared_memory = None

from . import wire
from .clock import CostModel
from .counters import Counters
from .job import MapReduceJob, TaskContext
from .types import Event, KeyValue, OutputFile, SpanFragment

#: Per-task statistic deltas: ``(group, name, delta)`` triples.
StatDeltas = Tuple[Tuple[str, str, int], ...]


@dataclass
class MapTaskPayload:
    """Everything one map task computed, in task-local virtual time.

    Attributes:
        task_id: index of the task within the map phase.
        cost: total virtual cost the task accumulated.
        events: events recorded by the task (local time; the engine rebases
            them to global time once the task is scheduled on a slot).
        emitted: the task's intermediate key-value pairs, post-combiner.
        counters: counters the task incremented.
        num_records: input records the task consumed.
        combine_input / combine_output: combiner fold sizes (0 when the job
            has no combiner).
        spans: trace-span fragments recorded by the task (local time, like
            ``events``); empty unless the running cluster has a tracer.
        stat_deltas: per-task deltas of registered process statistics (see
            :func:`register_task_stat_source`) — e.g. the similarity-cache
            hits/misses this task caused in whichever process ran it.
            Wall-clock bookkeeping only: the engine routes them to the
            metrics registry, never into job counters, because per-worker
            cache state legitimately differs between backends.
        wall_ns: wall-clock nanoseconds the task body took in whichever
            process ran it (cost-model calibration input; never read by
            virtual time).
        charge_profile: sorted ``(category, units)`` pairs of the task's
            tagged virtual charges (see ``TaskContext.charge``); the
            untagged remainder is ``cost - sum(units)``.
    """

    task_id: int
    cost: float
    events: List[Event]
    emitted: List[KeyValue]
    counters: Counters
    num_records: int
    combine_input: int = 0
    combine_output: int = 0
    spans: List[SpanFragment] = field(default_factory=list)
    stat_deltas: StatDeltas = ()
    wall_ns: int = 0
    charge_profile: Tuple[Tuple[str, float], ...] = ()


@dataclass
class ReduceTaskPayload:
    """Everything one reduce task computed, in task-local virtual time."""

    task_id: int
    cost: float
    events: List[Event]
    written: List[Any]
    files: List[OutputFile] = field(default_factory=list)
    counters: Counters = field(default_factory=Counters)
    num_groups: int = 0
    num_records: int = 0
    spans: List[SpanFragment] = field(default_factory=list)
    stat_deltas: StatDeltas = ()
    wall_ns: int = 0
    charge_profile: Tuple[Tuple[str, float], ...] = ()


# ---------------------------------------------------------------------------
# Per-task process statistics (similarity-cache deltas et al.)
# ---------------------------------------------------------------------------

#: Registered statistic sources: group -> zero-arg callable returning the
#: process-cumulative ``{name: value}`` snapshot for that group.
_TASK_STAT_SOURCES: Dict[str, Callable[[], Mapping[str, int]]] = {}


def register_task_stat_source(
    group: str, source: Callable[[], Mapping[str, int]]
) -> None:
    """Register a process-wide statistic to be sampled around every task.

    ``source()`` must return a cumulative ``{name: value}`` mapping; the
    per-task *delta* rides back to the driver in the payload's
    ``stat_deltas``, which is how worker-process cache statistics become
    visible to the driver's metrics.  Registering the same group again
    replaces the source (idempotent re-imports).
    """
    _TASK_STAT_SOURCES[group] = source


def _stat_snapshot() -> Dict[Tuple[str, str], int]:
    return {
        (group, name): value
        for group, source in _TASK_STAT_SOURCES.items()
        for name, value in source().items()
    }


def _stat_deltas(before: Dict[Tuple[str, str], int]) -> StatDeltas:
    after = _stat_snapshot()
    return tuple(
        (group, name, value - before.get((group, name), 0))
        for (group, name), value in sorted(after.items())
        if value != before.get((group, name), 0)
    )


# ---------------------------------------------------------------------------
# Per-job process-state reset hooks
# ---------------------------------------------------------------------------

#: Callables invoked at the start of every job — in the driver by the
#: engine, and in every parallel worker when it starts.  Used to reset
#: process-global wall-clock caches (the similarity memo) so their
#: ``matcher.*`` counters describe one job instead of leaking across
#: back-to-back runs in the same process.  Virtual time never reads these
#: caches, so resetting them cannot change results.
_JOB_RESET_HOOKS: List[Callable[[], None]] = []


def register_job_reset_hook(hook: Callable[[], None]) -> None:
    """Register ``hook`` to run at every job start (driver and workers).

    Registering the same function again is a no-op (idempotent re-imports).
    """
    if hook not in _JOB_RESET_HOOKS:
        _JOB_RESET_HOOKS.append(hook)


def run_job_reset_hooks() -> None:
    """Run every registered per-job reset hook (engine/worker startup)."""
    for hook in _JOB_RESET_HOOKS:
        hook()


# ---------------------------------------------------------------------------
# Pure per-task computations (shared by every backend)
# ---------------------------------------------------------------------------


def compute_map_task(
    job: MapReduceJob,
    split: Sequence[Any],
    task_id: int,
    cost_model: CostModel,
) -> MapTaskPayload:
    """Run one map task to completion and return its payload."""
    stats_before = _stat_snapshot()
    wall_start = time.perf_counter_ns()
    context = TaskContext(task_id, cost_model, job.config)
    mapper = job.mapper_factory()
    mapper.setup(context)
    for record in split:
        context.charge(cost_model.read_record, "read")
        mapper.map(record, context)
    mapper.cleanup(context)
    emitted = context.emitted
    combine_input = combine_output = 0
    if job.combiner is not None:
        combine_input = len(emitted)
        emitted = _apply_combiner(job, emitted, context)
        combine_output = len(emitted)
    return MapTaskPayload(
        task_id=task_id,
        cost=context.clock.now,
        events=list(context.emitted_events),
        emitted=emitted,
        counters=context.counters,
        num_records=len(split),
        combine_input=combine_input,
        combine_output=combine_output,
        spans=list(context.span_fragments),
        stat_deltas=_stat_deltas(stats_before),
        wall_ns=time.perf_counter_ns() - wall_start,
        charge_profile=tuple(sorted(context.charge_profile.items())),
    )


def _apply_combiner(
    job: MapReduceJob, emitted: List[KeyValue], context: TaskContext
) -> List[KeyValue]:
    """Fold a map task's output through the job's combiner."""
    assert job.combiner is not None
    context.charge(context.cost_model.sort_cost(len(emitted)), "sort")
    groups = group_by_key(emitted)
    combined: List[KeyValue] = []
    for key, values in groups.items():
        for value in job.combiner.combine(key, values):
            combined.append((key, value))
    return combined


def compute_reduce_task(
    job: MapReduceJob,
    items: Sequence[KeyValue],
    task_id: int,
    cost_model: CostModel,
) -> ReduceTaskPayload:
    """Run one reduce task (shuffle charge, sort, reduce calls) and return
    its payload.  Output-file close times stay task-local until the engine
    schedules the task and rebases them."""
    stats_before = _stat_snapshot()
    wall_start = time.perf_counter_ns()
    context = TaskContext(task_id, cost_model, job.config, alpha=job.alpha)
    # Shuffle: pull records in, then sort groups by key.
    context.charge(cost_model.shuffle_record * len(items), "shuffle")
    groups = group_by_key(items)
    keys = list(groups.keys())
    sort_key = job.key_sort
    keys.sort(key=sort_key if sort_key is not None else default_group_key)
    context.charge(cost_model.sort_cost(len(items)), "sort")

    reducer = job.reducer_factory()
    reducer.setup(context)
    for key in keys:
        reducer.reduce(key, groups[key], context)
    reducer.cleanup(context)
    return ReduceTaskPayload(
        task_id=task_id,
        cost=context.clock.now,
        events=list(context.emitted_events),
        written=context.written,
        files=context.finalize_files(),
        counters=context.counters,
        num_groups=len(keys),
        num_records=len(items),
        spans=list(context.span_fragments),
        stat_deltas=_stat_deltas(stats_before),
        wall_ns=time.perf_counter_ns() - wall_start,
        charge_profile=tuple(sorted(context.charge_profile.items())),
    )


def group_by_key(items: Sequence[KeyValue]) -> "dict[Any, List[Any]]":
    """Group shuffled key-value pairs by key, preserving arrival order."""
    groups: dict[Any, List[Any]] = {}
    for key, value in items:
        groups.setdefault(key, []).append(value)
    return groups


def default_group_key(key: Any) -> Any:
    """Default group ordering: natural key order with a repr fallback."""
    return (0, key) if isinstance(key, (int, float)) else (1, repr(key))


# ---------------------------------------------------------------------------
# Backends
# ---------------------------------------------------------------------------


class Executor:
    """Runs the independent per-task computations of one job phase.

    Implementations must return payloads in task-id order and must not
    change the payloads' contents relative to :class:`SerialExecutor` —
    the engine relies on this for cross-backend determinism.

    The engine brackets every job with :meth:`begin_job` / :meth:`end_job`
    (both no-ops by default) so backends can hold per-job resources — the
    parallel backend's worker pool lives exactly that long.  After each
    phase the engine calls :meth:`drain_stats` and surfaces whatever the
    backend measured as ``driver.*`` metrics.
    """

    name: str = "?"

    def begin_job(
        self,
        job: MapReduceJob,
        splits: Sequence[Sequence[Any]],
        cost_model: CostModel,
    ) -> None:
        """Called once before the job's map phase (resources may be lazy)."""

    def end_job(self) -> None:
        """Called once after the job's reduce phase (idempotent)."""

    def drain_stats(self) -> Dict[str, int]:
        """Performance statistics accumulated since the last drain.

        Wall-clock bookkeeping only (pool forks, wire bytes, chunks); the
        engine routes these to the metrics registry, never into job
        counters, so backends stay bit-identical in virtual time.
        """
        return {}

    def run_map_phase(
        self,
        job: MapReduceJob,
        splits: Sequence[Sequence[Any]],
        cost_model: CostModel,
    ) -> List[MapTaskPayload]:
        raise NotImplementedError

    def run_reduce_phase(
        self,
        job: MapReduceJob,
        partitions: Sequence[Sequence[KeyValue]],
        cost_model: CostModel,
    ) -> List[ReduceTaskPayload]:
        raise NotImplementedError

    def close(self) -> None:
        """Release any worker resources (idempotent)."""


class SerialExecutor(Executor):
    """The default backend: every task runs in the driver process."""

    name = "serial"

    def run_map_phase(self, job, splits, cost_model):
        return [
            compute_map_task(job, split, task_id, cost_model)
            for task_id, split in enumerate(splits)
        ]

    def run_reduce_phase(self, job, partitions, cost_model):
        return [
            compute_reduce_task(job, items, task_id, cost_model)
            for task_id, items in enumerate(partitions)
        ]


class _JobState:
    """One job's fork-inherited state, stashed in a module global.

    Workers created while this is the active global inherit it (and
    everything it references — the job's closures, the dataset slices in
    the map splits) copy-on-write.  ``profile_wire`` rides along so workers
    know whether to also measure the plain-pickle baseline.
    """

    __slots__ = ("job", "splits", "cost_model", "profile_wire")

    def __init__(self, job, splits, cost_model, profile_wire) -> None:
        self.job = job
        self.splits = splits
        self.cost_model = cost_model
        self.profile_wire = profile_wire


#: The job currently fanned out; workers inherit it at fork time.
_ACTIVE_JOB: Optional[_JobState] = None


def _require_job() -> _JobState:
    state = _ACTIVE_JOB
    if state is None:  # pragma: no cover - defensive
        raise RuntimeError(
            "worker has no inherited job state; the parallel backend "
            "requires the fork start method"
        )
    return state


def _run_worker_task(state: _JobState, message, input_segments) -> Tuple[bytes, int]:
    """Execute one task message; returns ``(wire blob, raw pickle size)``.

    ``("map", id)`` reads its split from the fork-inherited job state;
    ``("reduce-shm", id, segment, offset, length)`` reads its wire-encoded
    partition out of the named shared-memory segment (attached once per
    worker, cached in ``input_segments``); ``("reduce", id, blob)`` is the
    inline fallback carrying the partition on the queue itself.
    """
    kind = message[0]
    if kind == "map":
        task_id = message[1]
        payload = compute_map_task(
            state.job, state.splits[task_id], task_id, state.cost_model
        )
        blob = wire.encode_map_payload(payload)
    else:
        if kind == "reduce-shm":
            _, task_id, segment_name, offset, length = message
            segment = input_segments.get(segment_name)
            if segment is None:
                segment = _shared_memory.SharedMemory(name=segment_name)
                input_segments[segment_name] = segment
            items = wire.decode_records(bytes(segment.buf[offset : offset + length]))
        else:
            _, task_id, in_blob = message
            items = wire.decode_records(in_blob)
        payload = compute_reduce_task(state.job, items, task_id, state.cost_model)
        blob = wire.encode_reduce_payload(payload)
    raw = wire.raw_pickle_size(payload) if state.profile_wire else 0
    return blob, raw


def _worker_main(
    worker_id: int, task_queue, result_queue, arena_name: Optional[str]
) -> None:
    """Long-lived worker loop: pull a task, run it, post a result descriptor.

    Results land in this worker's append-only shared-memory arena when one
    exists and the blob fits in the remaining space; only the ``(offset,
    length)`` descriptor crosses the results queue.  Oversized blobs (or a
    platform without shared memory) fall back to inline descriptors.  Idle
    nanoseconds spent blocked on the task queue ride home with each result
    so the driver can report queue starvation.

    A ``None`` message is the shutdown sentinel.  The worker never unlinks
    any segment — the driver owns creation and destruction; workers only
    attach and close, which keeps the (process-shared, fork-inherited)
    resource tracker consistent on every CPython we support.
    """
    run_job_reset_hooks()
    state = _require_job()
    arena = None
    if arena_name is not None:
        arena = _shared_memory.SharedMemory(name=arena_name)
    cursor = 0
    input_segments: Dict[str, Any] = {}
    try:
        while True:
            idle_start = time.perf_counter_ns()
            message = task_queue.get()
            idle_ns = time.perf_counter_ns() - idle_start
            if message is None:
                break
            try:
                blob, raw = _run_worker_task(state, message, input_segments)
            except BaseException:
                result_queue.put(
                    ("error", message[1], worker_id, traceback.format_exc())
                )
                continue
            if arena is not None and cursor + len(blob) <= arena.size:
                arena.buf[cursor : cursor + len(blob)] = blob
                result_queue.put(
                    ("shm", message[1], worker_id, cursor, len(blob), raw, idle_ns)
                )
                cursor += len(blob)
            else:
                result_queue.put(
                    ("inline", message[1], worker_id, blob, raw, idle_ns)
                )
    finally:
        for segment in input_segments.values():
            segment.close()
        if arena is not None:
            arena.close()


def _default_workers() -> int:
    """Worker count honoring CPU affinity where the platform exposes it."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


#: Phases whose estimated virtual cost falls below this floor run
#: in-process.  Calibrated against the CostModel defaults: dispatching a
#: phase costs ~1 pool round-trip per chunk (hundreds of microseconds),
#: while one virtual cost unit corresponds to one reference-length pair
#: comparison (~10 µs of real work in this simulator), so phases cheaper
#: than a few hundred units lose more to IPC than fan-out can recover.
DEFAULT_SERIAL_FLOOR = 256.0

#: Per-worker result arena size.  Payload blobs for the workloads in this
#: repo total well under a megabyte per job; blobs that do not fit fall
#: back to inline queue messages, so the cap only affects wall-clock.
DEFAULT_ARENA_BYTES = 8 << 20

#: Seconds the driver waits on the results queue before checking whether
#: any worker is still alive (deadlock insurance, not a deadline).
_RESULT_POLL_SECONDS = 60.0


class ParallelExecutor(Executor):
    """Fan each job's tasks out to ``workers`` long-lived forked processes.

    The engine brackets jobs with :meth:`begin_job` / :meth:`end_job`; the
    fork-context workers are spawned lazily on the first phase that clears
    the serial floor and reused for the rest of the job, so a job pays for
    at most one fork generation (``driver.pool_forks`` ≤ jobs).  Map inputs
    reach workers via copy-on-write fork inheritance.  Reduce partitions
    (which only exist in the driver) are wire-encoded into one shared-memory
    segment per phase; workers attach by name and read their slice, so the
    task queue carries only small descriptors.  Result payloads come back
    the same way through per-worker arenas.  Scheduling is pull-based:
    workers take the next task (heaviest reduce unit first) whenever they
    go idle, which is work stealing without any stealing protocol.  The
    engine replays payloads exactly as it would serial ones, so results
    are bit-for-bit identical to :class:`SerialExecutor`.

    Args:
        workers: worker processes (default: visible CPU count).
        serial_floor: phases with estimated virtual cost below this run
            in-process (0 forces fan-out whenever possible).
        profile_wire: also measure the plain-pickle baseline size of every
            payload (``ipc_payload_raw_bytes``) — costs an extra pickle
            pass per task, so benches turn it on and production runs leave
            it off.
        use_shared_memory: move bulk bytes through shared-memory segments
            (default).  Off — or when segment creation fails at runtime —
            every blob travels inline on the queues instead; results are
            identical, only byte counters and wall-clock change.
        arena_bytes: size of each worker's result arena.

    When process parallelism cannot help — no ``fork`` support, a single
    worker, or a phase with fewer than two tasks — tasks run in-process,
    which changes nothing but wall-clock time.
    """

    name = "process"

    def __init__(
        self,
        workers: Optional[int] = None,
        *,
        serial_floor: float = DEFAULT_SERIAL_FLOOR,
        profile_wire: bool = False,
        use_shared_memory: bool = True,
        arena_bytes: int = DEFAULT_ARENA_BYTES,
    ) -> None:
        if workers is not None and workers <= 0:
            raise ValueError(f"workers must be positive, got {workers}")
        self.workers = workers if workers is not None else _default_workers()
        self.serial_floor = serial_floor
        self.profile_wire = profile_wire
        self.use_shared_memory = use_shared_memory and _shared_memory is not None
        self.arena_bytes = arena_bytes
        self._can_fork = "fork" in multiprocessing.get_all_start_methods()
        self._procs: List[multiprocessing.Process] = []
        self._task_queue = None
        self._result_queue = None
        self._arenas: List[Optional[Any]] = []
        self._input_segment: Optional[Any] = None
        self._job_state: Optional[_JobState] = None
        self._phase_stats: Dict[str, int] = {}
        #: Cumulative statistics across every job this executor ran
        #: (never drained; benches read this directly).
        self.stats: Dict[str, int] = {}

    # -- job lifecycle -------------------------------------------------

    def begin_job(self, job, splits, cost_model) -> None:
        self.end_job()  # defensive: a crashed previous job left state behind
        self._job_state = _JobState(job, splits, cost_model, self.profile_wire)

    def end_job(self) -> None:
        global _ACTIVE_JOB
        if self._procs:
            for _ in self._procs:
                self._task_queue.put(None)
            for proc in self._procs:
                proc.join(timeout=10.0)
            for proc in self._procs:
                if proc.is_alive():  # pragma: no cover - crashed worker
                    proc.terminate()
                    proc.join(timeout=5.0)
            self._procs = []
        if self._task_queue is not None:
            self._task_queue.close()
            self._result_queue.close()
            self._task_queue = None
            self._result_queue = None
        # Workers have exited (their attachments are closed); now — and
        # only now — the driver destroys the segments it created.
        for arena in self._arenas:
            if arena is not None:
                arena.close()
                arena.unlink()
        self._arenas = []
        self._release_input_segment()
        if _ACTIVE_JOB is self._job_state:
            _ACTIVE_JOB = None
        self._job_state = None

    def close(self) -> None:
        self.end_job()

    def drain_stats(self) -> Dict[str, int]:
        drained = self._phase_stats
        self._phase_stats = {}
        return drained

    def _count(self, name: str, amount: int) -> None:
        self._phase_stats[name] = self._phase_stats.get(name, 0) + amount
        self.stats[name] = self.stats.get(name, 0) + amount

    # -- phase execution -----------------------------------------------

    def run_map_phase(self, job, splits, cost_model):
        state = self._ensure_job(job, splits, cost_model)
        num_tasks = len(splits)
        estimate = cost_model.read_record * sum(len(s) for s in splits)
        if not self._should_fan_out(num_tasks, estimate):
            self._count("tasks_inline", num_tasks)
            return [
                compute_map_task(job, split, task_id, cost_model)
                for task_id, split in enumerate(splits)
            ]
        self._ensure_workers(state)
        self._count("tasks_fanned", num_tasks)
        order = list(range(num_tasks))
        for task_id in order:
            self._dispatch(("map", task_id))
        return self._collect(order, wire.decode_map_payload)

    def run_reduce_phase(self, job, partitions, cost_model):
        state = self._ensure_job(job, None, cost_model)
        num_tasks = len(partitions)
        total_items = sum(len(p) for p in partitions)
        estimate = (
            cost_model.shuffle_record * total_items
            + cost_model.sort_cost(total_items)
        )
        if not self._should_fan_out(num_tasks, estimate):
            self._count("tasks_inline", num_tasks)
            return [
                compute_reduce_task(job, items, task_id, cost_model)
                for task_id, items in enumerate(partitions)
            ]
        self._ensure_workers(state)
        # Enqueue heaviest partitions first: the queue is consumed in
        # order, so on skewed inputs the giant partition (or its balance
        # shards) starts immediately instead of behind light tasks.
        # Payload contents are untouched; re-sorting by task id in
        # ``_collect`` restores the order the engine requires.
        order = sorted(range(num_tasks), key=lambda t: (-len(partitions[t]), t))
        if order != list(range(num_tasks)):
            self._count("reduce_skew_dispatch", 1)
        blobs = {
            task_id: wire.encode_records(partitions[task_id])
            for task_id in order
        }
        segment = self._build_input_segment(blobs, order)
        self._count("tasks_fanned", num_tasks)
        if segment is None:
            for task_id in order:
                self._dispatch(("reduce", task_id, blobs[task_id]))
        else:
            offset = 0
            for task_id in order:
                length = len(blobs[task_id])
                self._dispatch(
                    ("reduce-shm", task_id, segment.name, offset, length)
                )
                offset += length
        payloads = self._collect(order, wire.decode_reduce_payload)
        # All partitions are consumed; drop the input segment before the
        # engine snapshots the phase (workers keep their attachment until
        # job end, which a POSIX unlink happily tolerates).
        self._release_input_segment()
        return payloads

    # -- internals -----------------------------------------------------

    def _ensure_job(self, job, splits, cost_model) -> _JobState:
        """The active job state (tolerates un-bracketed direct phase calls)."""
        state = self._job_state
        if state is None or state.job is not job:
            self.begin_job(job, splits if splits is not None else [], cost_model)
            state = self._job_state
        return state

    def _should_fan_out(self, num_tasks: int, estimated_cost: float) -> bool:
        return (
            self._can_fork
            and self.workers >= 2
            and num_tasks >= 2
            and estimated_cost >= self.serial_floor
        )

    def _ensure_workers(self, state: _JobState) -> None:
        """Spawn the job's workers on first use with ``state`` inheritable."""
        if self._procs:
            return
        global _ACTIVE_JOB
        _ACTIVE_JOB = state
        context = multiprocessing.get_context("fork")
        self._task_queue = context.Queue()
        self._result_queue = context.Queue()
        self._arenas = [self._create_segment(self.arena_bytes) for _ in range(self.workers)]
        for worker_id in range(self.workers):
            arena = self._arenas[worker_id]
            proc = context.Process(
                target=_worker_main,
                args=(
                    worker_id,
                    self._task_queue,
                    self._result_queue,
                    arena.name if arena is not None else None,
                ),
                daemon=True,
            )
            proc.start()
            self._procs.append(proc)
        self._count("pool_forks", 1)

    def _create_segment(self, size: int):
        """A fresh driver-owned shared-memory segment, or None (fallback)."""
        if not self.use_shared_memory or size <= 0:
            return None
        try:
            segment = _shared_memory.SharedMemory(create=True, size=size)
        except OSError:  # pragma: no cover - no usable /dev/shm
            return None
        self._count("shm_segments", 1)
        return segment

    def _build_input_segment(self, blobs: Dict[int, bytes], order: List[int]):
        """One segment holding every reduce partition blob, in queue order."""
        total = sum(len(blobs[task_id]) for task_id in order)
        segment = self._create_segment(total)
        if segment is None:
            return None
        offset = 0
        for task_id in order:
            blob = blobs[task_id]
            segment.buf[offset : offset + len(blob)] = blob
            offset += len(blob)
        self._count("shm_input_bytes", total)
        self._input_segment = segment
        return segment

    def _release_input_segment(self) -> None:
        if self._input_segment is not None:
            self._input_segment.close()
            self._input_segment.unlink()
            self._input_segment = None

    def _dispatch(self, message) -> None:
        """Enqueue one task message, counting its descriptor bytes."""
        size = len(pickle.dumps(message))
        self._count("ipc_input_bytes", size)
        self._count("ipc_bytes", size)
        self._task_queue.put(message)

    def _next_result(self):
        while True:
            try:
                return self._result_queue.get(timeout=_RESULT_POLL_SECONDS)
            except queue_module.Empty:  # pragma: no cover - crashed workers
                if not any(proc.is_alive() for proc in self._procs):
                    raise RuntimeError(
                        "all parallel workers exited without delivering results"
                    ) from None

    def _collect(self, order: List[int], decode):
        """Receive one result per dispatched task; payloads in task-id order.

        ``steal_tasks`` counts tasks whose executing worker differs from
        the one a static round-robin over the dispatch order would have
        used — the work the pull queue moved to whoever was free.
        """
        workers = max(1, len(self._procs))
        intended = {task_id: pos % workers for pos, task_id in enumerate(order)}
        payloads = []
        for _ in order:
            result = self._next_result()
            kind = result[0]
            if kind == "error":
                _, task_id, worker_id, trace = result
                raise RuntimeError(
                    f"parallel worker {worker_id} failed on task {task_id}:\n{trace}"
                )
            if kind == "shm":
                _, task_id, worker_id, offset, length, raw, idle_ns = result
                arena = self._arenas[worker_id]
                blob = bytes(arena.buf[offset : offset + length])
                self._count("shm_payload_bytes", length)
            else:
                _, task_id, worker_id, blob, raw, idle_ns = result
            descriptor = len(pickle.dumps(result))
            self._count("ipc_payload_bytes", descriptor)
            self._count("ipc_bytes", descriptor)
            self._count("payload_wire_bytes", len(blob))
            if raw:
                self._count("ipc_payload_raw_bytes", raw)
            if worker_id != intended[task_id]:
                self._count("steal_tasks", 1)
            self._count("worker_idle_ms", idle_ns // 1_000_000)
            payloads.append(decode(blob))
        payloads.sort(key=lambda p: p.task_id)
        return payloads


#: Recognised backend names for :func:`make_executor` / the CLI.
BACKENDS = ("serial", "process")


def make_executor(
    backend: str = "serial",
    workers: Optional[int] = None,
    *,
    profile_wire: bool = False,
    use_shared_memory: bool = True,
) -> Executor:
    """Build an executor from a CLI-style backend name.

    ``profile_wire`` (process backend only) additionally measures the
    plain-pickle baseline size of every payload for perf reporting;
    ``use_shared_memory=False`` forces the inline-queue transport.
    """
    if backend == "serial":
        return SerialExecutor()
    if backend == "process":
        return ParallelExecutor(
            workers, profile_wire=profile_wire, use_shared_memory=use_shared_memory
        )
    raise ValueError(f"unknown backend {backend!r}; expected one of {BACKENDS}")


__all__ = [
    "MapTaskPayload",
    "ReduceTaskPayload",
    "StatDeltas",
    "register_task_stat_source",
    "register_job_reset_hook",
    "run_job_reset_hooks",
    "compute_map_task",
    "compute_reduce_task",
    "group_by_key",
    "default_group_key",
    "Executor",
    "SerialExecutor",
    "ParallelExecutor",
    "DEFAULT_SERIAL_FLOOR",
    "DEFAULT_ARENA_BYTES",
    "BACKENDS",
    "make_executor",
]
