"""Pluggable execution backends for the MapReduce simulator.

The paper's whole point is *parallel* progressive ER, yet virtual time says
nothing about wall-clock time: the simulator historically ran every task of
every phase serially in one Python process.  This module separates the two
concerns:

* the **per-task computation** (:func:`compute_map_task` /
  :func:`compute_reduce_task`) is a pure function of ``(job, input split,
  task id, cost model)`` — it produces a :class:`MapTaskPayload` /
  :class:`ReduceTaskPayload` holding the task's virtual cost, local-time
  events, outputs and counters;
* the **accounting** (slot scheduling, event rebasing, counter aggregation,
  partitioning) stays in :class:`repro.mapreduce.engine.Cluster`, which
  replays the payloads through its :class:`~repro.mapreduce.engine.SlotPool`
  in task-id order.

An :class:`Executor` only decides *where* the per-task computations run:

* :class:`SerialExecutor` — in-process, one task at a time (the default);
* :class:`ParallelExecutor` — fans tasks out to a pool of forked worker
  processes that lives for the duration of one *job* (both phases), with
  chunked dispatch, a slim wire format and an adaptive serial fallback for
  phases too small to pay for IPC.

Parallel runtime design
-----------------------
The engine brackets every job with :meth:`Executor.begin_job` /
:meth:`Executor.end_job`.  For the parallel backend that means:

* **one fork per job, not per phase** — the job (full of lambdas and
  schedule objects, so never picklable) and its map splits are stashed in a
  module global before the pool forks; workers inherit everything
  copy-on-write and both phases run through the same pool.  The pool is
  created lazily, so a job whose phases all fall under the serial floor
  never forks at all.
* **chunked dispatch** — tasks are submitted with
  ``chunksize ≈ tasks / (4 * workers)``, so phases with many small tasks
  amortize the per-message round-trip instead of paying it per task.
* **explicit phase shipping** — reduce inputs only exist in the driver
  (they are map outputs), so they cannot arrive via fork inheritance;
  each reduce task's partition travels to its worker inside the chunked
  task message, wire-encoded.
* **slim wire format** — payloads (and shipped reduce inputs) cross the
  pipe in the compact encoding of :mod:`repro.mapreduce.wire` instead of
  plain dataclass pickles; the executor counts actual wire bytes (and,
  when ``profile_wire`` is on, the plain-pickle baseline) so the win is
  measurable via the engine's ``driver.*`` metrics.
* **adaptive serial fallback** — a phase whose estimated virtual cost is
  below :attr:`ParallelExecutor.serial_floor` runs in-process: the
  dispatch overhead would exceed the fanned-out compute.

Determinism contract
--------------------
Both backends produce **bit-for-bit identical** job results: the payload of
a task depends only on the task's inputs (tasks never share mutable state —
each gets a fresh mapper/reducer from its factory), floating-point virtual
costs are computed by the same pure Python code in either process, the wire
encoding is lossless, and the driver consumes payloads in task-id order
regardless of the order workers finish in.  Wall-clock time — and the
`driver.*` performance statistics that describe it — is the only observable
difference, which is why those statistics live in the metrics registry and
never inside job counters.

Fault injection keeps the contract for free: every fault decision (seeded
crashes, straggler slowdowns, speculation — see
:mod:`repro.mapreduce.faults`) is made *in the driver* from the plan's seed
and the payloads' virtual costs, never inside a worker and never from
wall-clock time, so a faulty run is just as backend-independent as a clean
one.

Worker serialization caveats
----------------------------
Jobs routinely close over lambdas and rich schedule objects, so the job is
*not* pickled to workers; the parallel backend requires the POSIX ``fork``
start method.  Task results (and shipped reduce inputs) cross the pipe
wire-encoded, so everything a mapper emits, a reducer writes, and every
event payload must be picklable.  On platforms without ``fork`` the
parallel backend transparently degrades to in-process execution (results
are identical either way).
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from . import wire
from .clock import CostModel
from .counters import Counters
from .job import MapReduceJob, TaskContext
from .types import Event, KeyValue, OutputFile, SpanFragment

#: Per-task statistic deltas: ``(group, name, delta)`` triples.
StatDeltas = Tuple[Tuple[str, str, int], ...]


@dataclass
class MapTaskPayload:
    """Everything one map task computed, in task-local virtual time.

    Attributes:
        task_id: index of the task within the map phase.
        cost: total virtual cost the task accumulated.
        events: events recorded by the task (local time; the engine rebases
            them to global time once the task is scheduled on a slot).
        emitted: the task's intermediate key-value pairs, post-combiner.
        counters: counters the task incremented.
        num_records: input records the task consumed.
        combine_input / combine_output: combiner fold sizes (0 when the job
            has no combiner).
        spans: trace-span fragments recorded by the task (local time, like
            ``events``); empty unless the running cluster has a tracer.
        stat_deltas: per-task deltas of registered process statistics (see
            :func:`register_task_stat_source`) — e.g. the similarity-cache
            hits/misses this task caused in whichever process ran it.
            Wall-clock bookkeeping only: the engine routes them to the
            metrics registry, never into job counters, because per-worker
            cache state legitimately differs between backends.
    """

    task_id: int
    cost: float
    events: List[Event]
    emitted: List[KeyValue]
    counters: Counters
    num_records: int
    combine_input: int = 0
    combine_output: int = 0
    spans: List[SpanFragment] = field(default_factory=list)
    stat_deltas: StatDeltas = ()


@dataclass
class ReduceTaskPayload:
    """Everything one reduce task computed, in task-local virtual time."""

    task_id: int
    cost: float
    events: List[Event]
    written: List[Any]
    files: List[OutputFile] = field(default_factory=list)
    counters: Counters = field(default_factory=Counters)
    num_groups: int = 0
    num_records: int = 0
    spans: List[SpanFragment] = field(default_factory=list)
    stat_deltas: StatDeltas = ()


# ---------------------------------------------------------------------------
# Per-task process statistics (similarity-cache deltas et al.)
# ---------------------------------------------------------------------------

#: Registered statistic sources: group -> zero-arg callable returning the
#: process-cumulative ``{name: value}`` snapshot for that group.
_TASK_STAT_SOURCES: Dict[str, Callable[[], Mapping[str, int]]] = {}


def register_task_stat_source(
    group: str, source: Callable[[], Mapping[str, int]]
) -> None:
    """Register a process-wide statistic to be sampled around every task.

    ``source()`` must return a cumulative ``{name: value}`` mapping; the
    per-task *delta* rides back to the driver in the payload's
    ``stat_deltas``, which is how worker-process cache statistics become
    visible to the driver's metrics.  Registering the same group again
    replaces the source (idempotent re-imports).
    """
    _TASK_STAT_SOURCES[group] = source


def _stat_snapshot() -> Dict[Tuple[str, str], int]:
    return {
        (group, name): value
        for group, source in _TASK_STAT_SOURCES.items()
        for name, value in source().items()
    }


def _stat_deltas(before: Dict[Tuple[str, str], int]) -> StatDeltas:
    after = _stat_snapshot()
    return tuple(
        (group, name, value - before.get((group, name), 0))
        for (group, name), value in sorted(after.items())
        if value != before.get((group, name), 0)
    )


# ---------------------------------------------------------------------------
# Pure per-task computations (shared by every backend)
# ---------------------------------------------------------------------------


def compute_map_task(
    job: MapReduceJob,
    split: Sequence[Any],
    task_id: int,
    cost_model: CostModel,
) -> MapTaskPayload:
    """Run one map task to completion and return its payload."""
    stats_before = _stat_snapshot()
    context = TaskContext(task_id, cost_model, job.config)
    mapper = job.mapper_factory()
    mapper.setup(context)
    for record in split:
        context.charge(cost_model.read_record)
        mapper.map(record, context)
    mapper.cleanup(context)
    emitted = context.emitted
    combine_input = combine_output = 0
    if job.combiner is not None:
        combine_input = len(emitted)
        emitted = _apply_combiner(job, emitted, context)
        combine_output = len(emitted)
    return MapTaskPayload(
        task_id=task_id,
        cost=context.clock.now,
        events=list(context.emitted_events),
        emitted=emitted,
        counters=context.counters,
        num_records=len(split),
        combine_input=combine_input,
        combine_output=combine_output,
        spans=list(context.span_fragments),
        stat_deltas=_stat_deltas(stats_before),
    )


def _apply_combiner(
    job: MapReduceJob, emitted: List[KeyValue], context: TaskContext
) -> List[KeyValue]:
    """Fold a map task's output through the job's combiner."""
    assert job.combiner is not None
    context.charge(context.cost_model.sort_cost(len(emitted)))
    groups = group_by_key(emitted)
    combined: List[KeyValue] = []
    for key, values in groups.items():
        for value in job.combiner.combine(key, values):
            combined.append((key, value))
    return combined


def compute_reduce_task(
    job: MapReduceJob,
    items: Sequence[KeyValue],
    task_id: int,
    cost_model: CostModel,
) -> ReduceTaskPayload:
    """Run one reduce task (shuffle charge, sort, reduce calls) and return
    its payload.  Output-file close times stay task-local until the engine
    schedules the task and rebases them."""
    stats_before = _stat_snapshot()
    context = TaskContext(task_id, cost_model, job.config, alpha=job.alpha)
    # Shuffle: pull records in, then sort groups by key.
    context.charge(cost_model.shuffle_record * len(items))
    groups = group_by_key(items)
    keys = list(groups.keys())
    sort_key = job.key_sort
    keys.sort(key=sort_key if sort_key is not None else default_group_key)
    context.charge(cost_model.sort_cost(len(items)))

    reducer = job.reducer_factory()
    reducer.setup(context)
    for key in keys:
        reducer.reduce(key, groups[key], context)
    reducer.cleanup(context)
    return ReduceTaskPayload(
        task_id=task_id,
        cost=context.clock.now,
        events=list(context.emitted_events),
        written=context.written,
        files=context.finalize_files(),
        counters=context.counters,
        num_groups=len(keys),
        num_records=len(items),
        spans=list(context.span_fragments),
        stat_deltas=_stat_deltas(stats_before),
    )


def group_by_key(items: Sequence[KeyValue]) -> "dict[Any, List[Any]]":
    """Group shuffled key-value pairs by key, preserving arrival order."""
    groups: dict[Any, List[Any]] = {}
    for key, value in items:
        groups.setdefault(key, []).append(value)
    return groups


def default_group_key(key: Any) -> Any:
    """Default group ordering: natural key order with a repr fallback."""
    return (0, key) if isinstance(key, (int, float)) else (1, repr(key))


# ---------------------------------------------------------------------------
# Backends
# ---------------------------------------------------------------------------


class Executor:
    """Runs the independent per-task computations of one job phase.

    Implementations must return payloads in task-id order and must not
    change the payloads' contents relative to :class:`SerialExecutor` —
    the engine relies on this for cross-backend determinism.

    The engine brackets every job with :meth:`begin_job` / :meth:`end_job`
    (both no-ops by default) so backends can hold per-job resources — the
    parallel backend's worker pool lives exactly that long.  After each
    phase the engine calls :meth:`drain_stats` and surfaces whatever the
    backend measured as ``driver.*`` metrics.
    """

    name: str = "?"

    def begin_job(
        self,
        job: MapReduceJob,
        splits: Sequence[Sequence[Any]],
        cost_model: CostModel,
    ) -> None:
        """Called once before the job's map phase (resources may be lazy)."""

    def end_job(self) -> None:
        """Called once after the job's reduce phase (idempotent)."""

    def drain_stats(self) -> Dict[str, int]:
        """Performance statistics accumulated since the last drain.

        Wall-clock bookkeeping only (pool forks, wire bytes, chunks); the
        engine routes these to the metrics registry, never into job
        counters, so backends stay bit-identical in virtual time.
        """
        return {}

    def run_map_phase(
        self,
        job: MapReduceJob,
        splits: Sequence[Sequence[Any]],
        cost_model: CostModel,
    ) -> List[MapTaskPayload]:
        raise NotImplementedError

    def run_reduce_phase(
        self,
        job: MapReduceJob,
        partitions: Sequence[Sequence[KeyValue]],
        cost_model: CostModel,
    ) -> List[ReduceTaskPayload]:
        raise NotImplementedError

    def close(self) -> None:
        """Release any worker resources (idempotent)."""


class SerialExecutor(Executor):
    """The default backend: every task runs in the driver process."""

    name = "serial"

    def run_map_phase(self, job, splits, cost_model):
        return [
            compute_map_task(job, split, task_id, cost_model)
            for task_id, split in enumerate(splits)
        ]

    def run_reduce_phase(self, job, partitions, cost_model):
        return [
            compute_reduce_task(job, items, task_id, cost_model)
            for task_id, items in enumerate(partitions)
        ]


class _JobState:
    """One job's fork-inherited state, stashed in a module global.

    Workers created while this is the active global inherit it (and
    everything it references — the job's closures, the dataset slices in
    the map splits) copy-on-write.  ``profile_wire`` rides along so workers
    know whether to also measure the plain-pickle baseline.
    """

    __slots__ = ("job", "splits", "cost_model", "profile_wire")

    def __init__(self, job, splits, cost_model, profile_wire) -> None:
        self.job = job
        self.splits = splits
        self.cost_model = cost_model
        self.profile_wire = profile_wire


#: The job currently fanned out; workers inherit it at fork time.
_ACTIVE_JOB: Optional[_JobState] = None


def _require_job() -> _JobState:
    state = _ACTIVE_JOB
    if state is None:  # pragma: no cover - defensive
        raise RuntimeError(
            "worker has no inherited job state; the parallel backend "
            "requires the fork start method"
        )
    return state


def _worker_map_task(task_id: int) -> Tuple[bytes, int]:
    """Top-level map-task entry point (picklable by name).

    Inputs arrive via fork inheritance (the split lives in the stashed job
    state); the payload returns wire-encoded, along with the plain-pickle
    baseline size when profiling is on (0 otherwise).
    """
    state = _require_job()
    payload = compute_map_task(
        state.job, state.splits[task_id], task_id, state.cost_model
    )
    raw = wire.raw_pickle_size(payload) if state.profile_wire else 0
    return wire.encode_map_payload(payload), raw


def _worker_reduce_task(task: Tuple[int, bytes]) -> Tuple[bytes, int]:
    """Top-level reduce-task entry point: the partition ships with the task."""
    state = _require_job()
    task_id, blob = task
    items = wire.decode_records(blob)
    payload = compute_reduce_task(state.job, items, task_id, state.cost_model)
    raw = wire.raw_pickle_size(payload) if state.profile_wire else 0
    return wire.encode_reduce_payload(payload), raw


def _default_workers() -> int:
    """Worker count honoring CPU affinity where the platform exposes it."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


#: Phases whose estimated virtual cost falls below this floor run
#: in-process.  Calibrated against the CostModel defaults: dispatching a
#: phase costs ~1 pool round-trip per chunk (hundreds of microseconds),
#: while one virtual cost unit corresponds to one reference-length pair
#: comparison (~10 µs of real work in this simulator), so phases cheaper
#: than a few hundred units lose more to IPC than fan-out can recover.
DEFAULT_SERIAL_FLOOR = 256.0

#: Chunk divisor: aim for ~4 chunks per worker so stragglers still balance.
CHUNKS_PER_WORKER = 4


class ParallelExecutor(Executor):
    """Fan each job's tasks out to a per-job pool of ``workers`` processes.

    The engine brackets jobs with :meth:`begin_job` / :meth:`end_job`; the
    fork-context pool is created lazily on the first phase that clears the
    serial floor and reused for the rest of the job, so a job pays for at
    most one pool fork (``driver.pool_forks`` ≤ jobs) instead of one per
    phase.  Map inputs reach workers via copy-on-write fork inheritance;
    reduce partitions (which only exist in the driver) ship with the
    chunked task messages, wire-encoded.  Payloads come back in the slim
    wire format; the engine replays them exactly as it would serial
    payloads, so results are bit-for-bit identical to
    :class:`SerialExecutor`.

    Args:
        workers: worker processes (default: visible CPU count).
        serial_floor: phases with estimated virtual cost below this run
            in-process (0 forces fan-out whenever possible).
        profile_wire: also measure the plain-pickle baseline size of every
            payload (``ipc_payload_raw_bytes``) — costs an extra pickle
            pass per task, so benches turn it on and production runs leave
            it off.

    When process parallelism cannot help — no ``fork`` support, a single
    worker, or a phase with fewer than two tasks — tasks run in-process,
    which changes nothing but wall-clock time.
    """

    name = "process"

    def __init__(
        self,
        workers: Optional[int] = None,
        *,
        serial_floor: float = DEFAULT_SERIAL_FLOOR,
        profile_wire: bool = False,
    ) -> None:
        if workers is not None and workers <= 0:
            raise ValueError(f"workers must be positive, got {workers}")
        self.workers = workers if workers is not None else _default_workers()
        self.serial_floor = serial_floor
        self.profile_wire = profile_wire
        self._can_fork = "fork" in multiprocessing.get_all_start_methods()
        self._pool: Optional[ProcessPoolExecutor] = None
        self._job_state: Optional[_JobState] = None
        self._phase_stats: Dict[str, int] = {}
        #: Cumulative statistics across every job this executor ran
        #: (never drained; benches read this directly).
        self.stats: Dict[str, int] = {}

    # -- job lifecycle -------------------------------------------------

    def begin_job(self, job, splits, cost_model) -> None:
        self.end_job()  # defensive: a crashed previous job left state behind
        self._job_state = _JobState(job, splits, cost_model, self.profile_wire)

    def end_job(self) -> None:
        global _ACTIVE_JOB
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
        if _ACTIVE_JOB is self._job_state:
            _ACTIVE_JOB = None
        self._job_state = None

    def close(self) -> None:
        self.end_job()

    def drain_stats(self) -> Dict[str, int]:
        drained = self._phase_stats
        self._phase_stats = {}
        return drained

    def _count(self, name: str, amount: int) -> None:
        self._phase_stats[name] = self._phase_stats.get(name, 0) + amount
        self.stats[name] = self.stats.get(name, 0) + amount

    # -- phase execution -----------------------------------------------

    def run_map_phase(self, job, splits, cost_model):
        state = self._ensure_job(job, splits, cost_model)
        num_tasks = len(splits)
        estimate = cost_model.read_record * sum(len(s) for s in splits)
        if not self._should_fan_out(num_tasks, estimate):
            self._count("tasks_inline", num_tasks)
            return [
                compute_map_task(job, split, task_id, cost_model)
                for task_id, split in enumerate(splits)
            ]
        pool = self._ensure_pool(state)
        chunksize = self._chunksize(num_tasks)
        self._count("tasks_fanned", num_tasks)
        self._count("chunks", -(-num_tasks // chunksize))
        results = list(
            pool.map(_worker_map_task, range(num_tasks), chunksize=chunksize)
        )
        return [self._decode(blob, raw, wire.decode_map_payload) for blob, raw in results]

    def run_reduce_phase(self, job, partitions, cost_model):
        state = self._ensure_job(job, None, cost_model)
        num_tasks = len(partitions)
        total_items = sum(len(p) for p in partitions)
        estimate = (
            cost_model.shuffle_record * total_items
            + cost_model.sort_cost(total_items)
        )
        if not self._should_fan_out(num_tasks, estimate):
            self._count("tasks_inline", num_tasks)
            return [
                compute_reduce_task(job, items, task_id, cost_model)
                for task_id, items in enumerate(partitions)
            ]
        pool = self._ensure_pool(state)
        # Dispatch heaviest partitions first: chunks are handed out in
        # submission order, so on skewed inputs the giant partition starts
        # immediately instead of queueing behind a chunk of light tasks.
        # Payload contents are untouched; re-sorting by task id below
        # restores the order the engine (and backend parity) requires.
        order = sorted(
            range(num_tasks), key=lambda t: (-len(partitions[t]), t)
        )
        if order != list(range(num_tasks)):
            self._count("reduce_skew_dispatch", 1)
        tasks: List[Tuple[int, bytes]] = []
        for task_id in order:
            blob = wire.encode_records(partitions[task_id])
            self._count("ipc_input_bytes", len(blob))
            self._count("ipc_bytes", len(blob))
            tasks.append((task_id, blob))
        chunksize = self._chunksize(num_tasks)
        self._count("tasks_fanned", num_tasks)
        self._count("chunks", -(-num_tasks // chunksize))
        results = list(pool.map(_worker_reduce_task, tasks, chunksize=chunksize))
        payloads = [
            self._decode(blob, raw, wire.decode_reduce_payload)
            for blob, raw in results
        ]
        payloads.sort(key=lambda p: p.task_id)
        return payloads

    # -- internals -----------------------------------------------------

    def _ensure_job(self, job, splits, cost_model) -> _JobState:
        """The active job state (tolerates un-bracketed direct phase calls)."""
        state = self._job_state
        if state is None or state.job is not job:
            self.begin_job(job, splits if splits is not None else [], cost_model)
            state = self._job_state
        return state

    def _should_fan_out(self, num_tasks: int, estimated_cost: float) -> bool:
        return (
            self._can_fork
            and self.workers >= 2
            and num_tasks >= 2
            and estimated_cost >= self.serial_floor
        )

    def _chunksize(self, num_tasks: int) -> int:
        return max(1, num_tasks // (CHUNKS_PER_WORKER * self.workers))

    def _ensure_pool(self, state: _JobState) -> ProcessPoolExecutor:
        """The job's pool, forked on first use with ``state`` inheritable."""
        if self._pool is None:
            global _ACTIVE_JOB
            _ACTIVE_JOB = state
            context = multiprocessing.get_context("fork")
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers, mp_context=context
            )
            self._count("pool_forks", 1)
        return self._pool

    def _decode(self, blob: bytes, raw_size: int, decode):
        self._count("ipc_payload_bytes", len(blob))
        self._count("ipc_bytes", len(blob))
        if raw_size:
            self._count("ipc_payload_raw_bytes", raw_size)
        return decode(blob)


#: Recognised backend names for :func:`make_executor` / the CLI.
BACKENDS = ("serial", "process")


def make_executor(
    backend: str = "serial",
    workers: Optional[int] = None,
    *,
    profile_wire: bool = False,
) -> Executor:
    """Build an executor from a CLI-style backend name.

    ``profile_wire`` (process backend only) additionally measures the
    plain-pickle baseline size of every payload for perf reporting.
    """
    if backend == "serial":
        return SerialExecutor()
    if backend == "process":
        return ParallelExecutor(workers, profile_wire=profile_wire)
    raise ValueError(f"unknown backend {backend!r}; expected one of {BACKENDS}")


__all__ = [
    "MapTaskPayload",
    "ReduceTaskPayload",
    "StatDeltas",
    "register_task_stat_source",
    "compute_map_task",
    "compute_reduce_task",
    "group_by_key",
    "default_group_key",
    "Executor",
    "SerialExecutor",
    "ParallelExecutor",
    "DEFAULT_SERIAL_FLOOR",
    "CHUNKS_PER_WORKER",
    "BACKENDS",
    "make_executor",
]
