"""Pluggable execution backends for the MapReduce simulator.

The paper's whole point is *parallel* progressive ER, yet virtual time says
nothing about wall-clock time: the simulator historically ran every task of
every phase serially in one Python process.  This module separates the two
concerns:

* the **per-task computation** (:func:`compute_map_task` /
  :func:`compute_reduce_task`) is a pure function of ``(job, input split,
  task id, cost model)`` — it produces a :class:`MapTaskPayload` /
  :class:`ReduceTaskPayload` holding the task's virtual cost, local-time
  events, outputs and counters;
* the **accounting** (slot scheduling, event rebasing, counter aggregation,
  partitioning) stays in :class:`repro.mapreduce.engine.Cluster`, which
  replays the payloads through its :class:`~repro.mapreduce.engine.SlotPool`
  in task-id order.

An :class:`Executor` only decides *where* the per-task computations run:

* :class:`SerialExecutor` — in-process, one task at a time (the default);
* :class:`ParallelExecutor` — fans the tasks of a phase out to worker
  processes via a fork-context :class:`concurrent.futures.ProcessPoolExecutor`.

Determinism contract
--------------------
Both backends produce **bit-for-bit identical** job results: the payload of
a task depends only on the task's inputs (tasks never share mutable state —
each gets a fresh mapper/reducer from its factory), floating-point virtual
costs are computed by the same pure Python code in either process, and the
driver consumes payloads in task-id order regardless of the order workers
finish in.  Wall-clock time is the only observable difference.

Fault injection keeps the contract for free: every fault decision (seeded
crashes, straggler slowdowns, speculation — see
:mod:`repro.mapreduce.faults`) is made *in the driver* from the plan's seed
and the payloads' virtual costs, never inside a worker and never from
wall-clock time, so a faulty run is just as backend-independent as a clean
one.

Worker serialization caveats
----------------------------
Jobs routinely close over lambdas and rich schedule objects, so the job is
*not* pickled to workers.  Instead the parallel backend relies on the POSIX
``fork`` start method: phase state is stashed in a module global immediately
before the pool is created, and workers inherit it via copy-on-write.  Task
*results* (payloads) are pickled back to the driver, so everything a mapper
emits, a reducer writes, and every event payload must be picklable.  On
platforms without ``fork`` the parallel backend transparently degrades to
in-process execution (results are identical either way).
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence

from .clock import CostModel
from .counters import Counters
from .job import MapReduceJob, TaskContext
from .types import Event, KeyValue, OutputFile, SpanFragment


@dataclass
class MapTaskPayload:
    """Everything one map task computed, in task-local virtual time.

    Attributes:
        task_id: index of the task within the map phase.
        cost: total virtual cost the task accumulated.
        events: events recorded by the task (local time; the engine rebases
            them to global time once the task is scheduled on a slot).
        emitted: the task's intermediate key-value pairs, post-combiner.
        counters: counters the task incremented.
        num_records: input records the task consumed.
        combine_input / combine_output: combiner fold sizes (0 when the job
            has no combiner).
        spans: trace-span fragments recorded by the task (local time, like
            ``events``); empty unless the running cluster has a tracer.
    """

    task_id: int
    cost: float
    events: List[Event]
    emitted: List[KeyValue]
    counters: Counters
    num_records: int
    combine_input: int = 0
    combine_output: int = 0
    spans: List[SpanFragment] = field(default_factory=list)


@dataclass
class ReduceTaskPayload:
    """Everything one reduce task computed, in task-local virtual time."""

    task_id: int
    cost: float
    events: List[Event]
    written: List[Any]
    files: List[OutputFile] = field(default_factory=list)
    counters: Counters = field(default_factory=Counters)
    num_groups: int = 0
    num_records: int = 0
    spans: List[SpanFragment] = field(default_factory=list)


# ---------------------------------------------------------------------------
# Pure per-task computations (shared by every backend)
# ---------------------------------------------------------------------------


def compute_map_task(
    job: MapReduceJob,
    split: Sequence[Any],
    task_id: int,
    cost_model: CostModel,
) -> MapTaskPayload:
    """Run one map task to completion and return its payload."""
    context = TaskContext(task_id, cost_model, job.config)
    mapper = job.mapper_factory()
    mapper.setup(context)
    for record in split:
        context.charge(cost_model.read_record)
        mapper.map(record, context)
    mapper.cleanup(context)
    emitted = context.emitted
    combine_input = combine_output = 0
    if job.combiner is not None:
        combine_input = len(emitted)
        emitted = _apply_combiner(job, emitted, context)
        combine_output = len(emitted)
    return MapTaskPayload(
        task_id=task_id,
        cost=context.clock.now,
        events=list(context.emitted_events),
        emitted=emitted,
        counters=context.counters,
        num_records=len(split),
        combine_input=combine_input,
        combine_output=combine_output,
        spans=list(context.span_fragments),
    )


def _apply_combiner(
    job: MapReduceJob, emitted: List[KeyValue], context: TaskContext
) -> List[KeyValue]:
    """Fold a map task's output through the job's combiner."""
    assert job.combiner is not None
    context.charge(context.cost_model.sort_cost(len(emitted)))
    groups = group_by_key(emitted)
    combined: List[KeyValue] = []
    for key, values in groups.items():
        for value in job.combiner.combine(key, values):
            combined.append((key, value))
    return combined


def compute_reduce_task(
    job: MapReduceJob,
    items: Sequence[KeyValue],
    task_id: int,
    cost_model: CostModel,
) -> ReduceTaskPayload:
    """Run one reduce task (shuffle charge, sort, reduce calls) and return
    its payload.  Output-file close times stay task-local until the engine
    schedules the task and rebases them."""
    context = TaskContext(task_id, cost_model, job.config, alpha=job.alpha)
    # Shuffle: pull records in, then sort groups by key.
    context.charge(cost_model.shuffle_record * len(items))
    groups = group_by_key(items)
    keys = list(groups.keys())
    sort_key = job.key_sort
    keys.sort(key=sort_key if sort_key is not None else default_group_key)
    context.charge(cost_model.sort_cost(len(items)))

    reducer = job.reducer_factory()
    reducer.setup(context)
    for key in keys:
        reducer.reduce(key, groups[key], context)
    reducer.cleanup(context)
    return ReduceTaskPayload(
        task_id=task_id,
        cost=context.clock.now,
        events=list(context.emitted_events),
        written=context.written,
        files=context.finalize_files(),
        counters=context.counters,
        num_groups=len(keys),
        num_records=len(items),
        spans=list(context.span_fragments),
    )


def group_by_key(items: Sequence[KeyValue]) -> "dict[Any, List[Any]]":
    """Group shuffled key-value pairs by key, preserving arrival order."""
    groups: dict[Any, List[Any]] = {}
    for key, value in items:
        groups.setdefault(key, []).append(value)
    return groups


def default_group_key(key: Any) -> Any:
    """Default group ordering: natural key order with a repr fallback."""
    return (0, key) if isinstance(key, (int, float)) else (1, repr(key))


# ---------------------------------------------------------------------------
# Backends
# ---------------------------------------------------------------------------


class Executor:
    """Runs the independent per-task computations of one job phase.

    Implementations must return payloads in task-id order and must not
    change the payloads' contents relative to :class:`SerialExecutor` —
    the engine relies on this for cross-backend determinism.
    """

    name: str = "?"

    def run_map_phase(
        self,
        job: MapReduceJob,
        splits: Sequence[Sequence[Any]],
        cost_model: CostModel,
    ) -> List[MapTaskPayload]:
        raise NotImplementedError

    def run_reduce_phase(
        self,
        job: MapReduceJob,
        partitions: Sequence[Sequence[KeyValue]],
        cost_model: CostModel,
    ) -> List[ReduceTaskPayload]:
        raise NotImplementedError

    def close(self) -> None:
        """Release any worker resources (idempotent)."""


class SerialExecutor(Executor):
    """The default backend: every task runs in the driver process."""

    name = "serial"

    def run_map_phase(self, job, splits, cost_model):
        return [
            compute_map_task(job, split, task_id, cost_model)
            for task_id, split in enumerate(splits)
        ]

    def run_reduce_phase(self, job, partitions, cost_model):
        return [
            compute_reduce_task(job, items, task_id, cost_model)
            for task_id, items in enumerate(partitions)
        ]


class _PhaseState:
    """One phase's inputs, stashed in a module global for fork inheritance."""

    __slots__ = ("kind", "job", "inputs", "cost_model")

    def __init__(self, kind: str, job: MapReduceJob, inputs, cost_model) -> None:
        self.kind = kind
        self.job = job
        self.inputs = inputs
        self.cost_model = cost_model

    def run_task(self, task_id: int):
        if self.kind == "map":
            return compute_map_task(
                self.job, self.inputs[task_id], task_id, self.cost_model
            )
        return compute_reduce_task(
            self.job, self.inputs[task_id], task_id, self.cost_model
        )


#: The phase currently being fanned out; workers inherit it at fork time.
_ACTIVE_PHASE: Optional[_PhaseState] = None


def _run_phase_task(task_id: int):
    """Top-level worker entry point (picklable by name)."""
    phase = _ACTIVE_PHASE
    if phase is None:  # pragma: no cover - defensive
        raise RuntimeError(
            "worker has no inherited phase state; the parallel backend "
            "requires the fork start method"
        )
    return phase.run_task(task_id)


def _default_workers() -> int:
    """Worker count honoring CPU affinity where the platform exposes it."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


class ParallelExecutor(Executor):
    """Fan each phase's tasks out to ``workers`` processes.

    A fresh fork-context pool is created per phase so workers inherit the
    phase state (job, splits/partitions) via copy-on-write — jobs are full
    of lambdas and cannot be pickled.  Payloads come back pickled; the
    engine replays them exactly as it would serial payloads, so results
    are bit-for-bit identical to :class:`SerialExecutor`.

    When process parallelism cannot help — no ``fork`` support, a single
    worker, or a phase with fewer than two tasks — tasks run in-process,
    which changes nothing but wall-clock time.
    """

    name = "process"

    def __init__(self, workers: Optional[int] = None) -> None:
        if workers is not None and workers <= 0:
            raise ValueError(f"workers must be positive, got {workers}")
        self.workers = workers if workers is not None else _default_workers()
        self._can_fork = "fork" in multiprocessing.get_all_start_methods()

    def run_map_phase(self, job, splits, cost_model):
        return self._run_phase(_PhaseState("map", job, splits, cost_model), len(splits))

    def run_reduce_phase(self, job, partitions, cost_model):
        return self._run_phase(
            _PhaseState("reduce", job, partitions, cost_model), len(partitions)
        )

    def _run_phase(self, phase: _PhaseState, num_tasks: int):
        if num_tasks == 0:
            return []
        if not self._can_fork or self.workers < 2 or num_tasks < 2:
            return [phase.run_task(task_id) for task_id in range(num_tasks)]
        global _ACTIVE_PHASE
        _ACTIVE_PHASE = phase
        try:
            context = multiprocessing.get_context("fork")
            with ProcessPoolExecutor(
                max_workers=min(self.workers, num_tasks), mp_context=context
            ) as pool:
                # pool.map preserves submission order: payloads come back in
                # task-id order no matter which worker finished first.
                return list(pool.map(_run_phase_task, range(num_tasks)))
        finally:
            _ACTIVE_PHASE = None


#: Recognised backend names for :func:`make_executor` / the CLI.
BACKENDS = ("serial", "process")


def make_executor(backend: str = "serial", workers: Optional[int] = None) -> Executor:
    """Build an executor from a CLI-style backend name."""
    if backend == "serial":
        return SerialExecutor()
    if backend == "process":
        return ParallelExecutor(workers)
    raise ValueError(f"unknown backend {backend!r}; expected one of {BACKENDS}")


__all__ = [
    "MapTaskPayload",
    "ReduceTaskPayload",
    "compute_map_task",
    "compute_reduce_task",
    "group_by_key",
    "default_group_key",
    "Executor",
    "SerialExecutor",
    "ParallelExecutor",
    "BACKENDS",
    "make_executor",
]
