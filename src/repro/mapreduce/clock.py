"""Virtual time for the MapReduce simulator.

The paper evaluates progressiveness as *duplicate recall versus execution
time* on a real Hadoop cluster.  This reproduction replaces wall-clock time
with deterministic virtual time: every task owns a :class:`VirtualClock`
that is charged through an explicit :class:`CostModel`.  One cost unit is
calibrated to one resolve/match invocation on strings of reference length,
so curves are comparable across approaches and machines.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Mapping


@dataclass(frozen=True)
class CostModel:
    """Unit costs charged to task clocks.

    All costs are expressed in abstract *cost units*; the benchmarks report
    them as "time".  The defaults make a pair comparison the dominant cost,
    matching the paper's observation that the resolve/match function is
    compute-intensive while I/O and sorting are comparatively cheap but not
    negligible (sorting overhead is what separates ``w = 5`` from ``w = 15``
    in Figure 8).

    Attributes:
        compare: cost of one resolve/match invocation on a pair of entities
            of reference attribute length.  Length-sensitive matchers scale
            this by actual string lengths.
        read_record: cost of reading one input record in a map task.
        emit_pair: cost of emitting one key-value pair from a map task.
        shuffle_record: per-record cost of moving a record through the
            shuffle into a reduce task (network + deserialize).
        sort_item: coefficient of the ``n * log2(n)`` charge for sorting
            ``n`` items (hint generation in SN/PSNM, shuffle sort).
        hint_setup: flat cost of initializing a hint for one block.
        schedule_block: per-block cost of progressive schedule generation
            (charged during the setup of Job 2's map tasks).
        stat_record: per-record cost of the statistics (first) job's reduce
            work.
    """

    compare: float = 1.0
    read_record: float = 0.01
    emit_pair: float = 0.005
    shuffle_record: float = 0.005
    sort_item: float = 0.02
    hint_setup: float = 0.5
    schedule_block: float = 0.05
    stat_record: float = 0.005

    def sort_cost(self, n: int) -> float:
        """Cost of comparison-sorting ``n`` items."""
        if n <= 1:
            return 0.0
        return self.sort_item * n * math.log2(n)

    @classmethod
    def from_calibration(cls, fit: Any, *, base: "CostModel" = None) -> "CostModel":
        """A cost model whose ratios match a calibrated host.

        ``fit`` may be a :class:`~repro.core.calibration.CalibrationFit`
        (anything with a ``seconds_per_unit`` mapping), a calibration
        report dict (as written by ``repro calibrate --out`` — the
        ``fitted_constants`` key is unwrapped), or the fitted-constants
        mapping itself (category -> price relative to ``compare``).

        Each per-op cost of ``base`` (default: the stock :class:`CostModel`)
        is scaled by its category's fitted constant, so the returned model
        prices operations in compare units *as this machine actually runs
        them*: one virtual unit of the result is worth one real compare,
        and category ratios track measured wall clock instead of the stock
        guesses.  ``compare`` stays the 1.0 reference; the untagged
        ``other`` constant scales the bookkeeping costs (hint setup,
        schedule generation, statistics) that the fit could not attribute
        to a tagged category; the per-task ``task`` intercept has no
        per-op counterpart and is ignored.
        """
        constants: Mapping[str, float]
        per_unit = getattr(fit, "seconds_per_unit", None)
        if per_unit is not None:
            compare_price = per_unit.get("compare", 0.0)
            if compare_price <= 0.0:
                raise ValueError(
                    "calibration fit has no positive compare price; "
                    "run a workload with comparisons first"
                )
            constants = {
                cat: price / compare_price for cat, price in per_unit.items()
            }
        elif isinstance(fit, Mapping):
            constants = fit.get("fitted_constants", fit)
        else:
            raise TypeError(
                "from_calibration wants a CalibrationFit, a calibration "
                f"report dict, or a fitted-constants mapping, got "
                f"{type(fit).__name__}"
            )
        base = base if base is not None else cls()
        scale = lambda cat, default=0.0: float(constants.get(cat, default))
        other = scale("other", 1.0)
        return cls(
            compare=base.compare * scale("compare", 1.0),
            read_record=base.read_record * scale("read"),
            emit_pair=base.emit_pair * scale("emit"),
            shuffle_record=base.shuffle_record * scale("shuffle"),
            sort_item=base.sort_item * scale("sort"),
            hint_setup=base.hint_setup * other,
            schedule_block=base.schedule_block * other,
            stat_record=base.stat_record * other,
        )


@dataclass
class VirtualClock:
    """A monotone per-task cost accumulator.

    ``now`` is the local elapsed virtual time of the owning task; the engine
    converts it to global time by adding the task's start offset.
    """

    now: float = 0.0
    _charges: int = field(default=0, repr=False)

    def charge(self, units: float) -> float:
        """Advance the clock by ``units`` (must be non-negative).

        Returns the new local time, which callers use to timestamp events.
        """
        if units < 0:
            raise ValueError(f"cannot charge negative cost: {units}")
        self.now += units
        self._charges += 1
        return self.now

    @property
    def charge_count(self) -> int:
        """Number of individual charges applied (diagnostic)."""
        return self._charges
