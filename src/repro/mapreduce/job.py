"""Job specification: mappers, reducers, partitioners and task contexts.

The API intentionally mirrors Hadoop's old-style ``org.apache.hadoop.mapred``
interfaces (``setup`` / ``map`` / ``reduce`` / ``Partitioner``) because the
paper's implementation targets Hadoop 1.2.1 and relies on details such as the
map-task ``setup`` hook (where the progressive schedule is generated) and a
custom partition function (which routes blocks by sequence value).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List, Optional, Sequence

from .clock import CostModel, VirtualClock
from .counters import Counters
from .types import Config, Event, KeyValue, OutputFile, SpanFragment

#: Job-config key the engine sets when a tracer is attached; task contexts
#: record span fragments only when it is truthy, so tracing stays zero-cost
#: when disabled.
TRACE_CONFIG_KEY = "observability.trace"


class TaskContext:
    """Per-task runtime handle passed to mappers and reducers.

    Provides cost charging, event recording, counters, and (reduce side)
    incremental output.  ``alpha`` enables the paper's "new output file every
    α units of cost" behaviour; ``alpha = None`` keeps a single file closed
    at task end.
    """

    def __init__(
        self,
        task_id: int,
        cost_model: CostModel,
        config: Config,
        *,
        alpha: Optional[float] = None,
    ) -> None:
        self.task_id = task_id
        self.cost_model = cost_model
        self.config = config
        self.clock = VirtualClock()
        self.counters = Counters()
        self.emitted: List[KeyValue] = []
        self.written: List[Any] = []
        self.span_fragments: List[SpanFragment] = []
        self._trace_enabled = bool(config.get(TRACE_CONFIG_KEY)) if config else False
        self._alpha = alpha
        self._files: List[OutputFile] = []
        self._current_file = OutputFile(task_id=task_id, index=0, close_time=0.0)
        self._next_flush = alpha if alpha is not None else None
        self._start_time = 0.0  # set by the engine before running
        #: Virtual cost per charge category ("compare", "emit", "shuffle",
        #: "sort", "read"); untagged charges are the calibration residual.
        self.charge_profile: dict = {}

    # -- cost & events ---------------------------------------------------

    def charge(self, units: float, category: Optional[str] = None) -> float:
        """Charge ``units`` of cost and return the new local time.

        ``category`` tags the charge for cost-model calibration (see
        :mod:`repro.core.calibration`); it never affects the clock, events
        or counters, so tagged and untagged runs are bit-identical.
        """
        now = self.clock.charge(units)
        if category is not None:
            self.charge_profile[category] = (
                self.charge_profile.get(category, 0.0) + units
            )
        if self._next_flush is not None and now >= self._next_flush:
            self._rotate_file(now)
        return now

    def record_event(self, kind: str, payload: Any) -> None:
        """Record an event at the current local time.

        The engine rebases event times to global time after the task ran.
        """
        self.emitted_events.append(Event(time=self.clock.now, kind=kind, payload=payload))

    @property
    def emitted_events(self) -> List[Event]:
        if not hasattr(self, "_events"):
            self._events: List[Event] = []
        return self._events

    # -- tracing -----------------------------------------------------------

    @property
    def tracing(self) -> bool:
        """True when a tracer is attached to the cluster running this task.

        Hot paths should guard manual ``clock.now`` bookkeeping on this
        flag; :meth:`record_span` itself is already a no-op when disabled.
        """
        return self._trace_enabled

    def record_span(
        self, name: str, category: str, start: float, end: float, **args: Any
    ) -> None:
        """Record a trace span over ``[start, end]`` in task-local time.

        Spans are pure observation: they charge no cost and never alter
        events or counters, so a traced run is bit-identical to an
        untraced one.  The engine rebases fragments to global time when
        the task is scheduled.  The task id is attached automatically.
        """
        if not self._trace_enabled:
            return
        merged = dict(args)
        merged["task"] = self.task_id
        self.span_fragments.append(
            SpanFragment(
                name=name,
                category=category,
                start=start,
                end=end,
                args=tuple(sorted(merged.items())),
            )
        )

    # -- map-side emission ------------------------------------------------

    def emit(self, key: Any, value: Any) -> None:
        """Emit an intermediate key-value pair (map side)."""
        self.charge(self.cost_model.emit_pair, "emit")
        self.emitted.append((key, value))

    # -- reduce-side output -----------------------------------------------

    def write(self, record: Any) -> None:
        """Write a final output record (reduce side), into the current file."""
        self.written.append(record)
        self._current_file.records.append(record)

    def _rotate_file(self, now: float) -> None:
        """Close the current output file and open the next one."""
        assert self._alpha is not None and self._next_flush is not None
        self._current_file.close_time = now
        self._files.append(self._current_file)
        self._current_file = OutputFile(
            task_id=self.task_id, index=self._current_file.index + 1, close_time=0.0
        )
        while self._next_flush <= now:
            self._next_flush += self._alpha

    def finalize_files(self) -> List[OutputFile]:
        """Close the trailing file at task end and return all files."""
        if self._current_file.records or not self._files:
            self._current_file.close_time = self.clock.now
            self._files.append(self._current_file)
        return self._files


class Mapper:
    """Base mapper.  Subclasses override :meth:`map` (and optionally
    :meth:`setup`, which Hadoop calls once per map task before any input)."""

    def setup(self, context: TaskContext) -> None:
        """Called once before the first record; may charge setup cost."""

    def map(self, record: Any, context: TaskContext) -> None:
        """Process one input record; emit via ``context.emit``."""
        raise NotImplementedError

    def cleanup(self, context: TaskContext) -> None:
        """Called once after the last record."""


class Reducer:
    """Base reducer.  Subclasses override :meth:`reduce`."""

    def setup(self, context: TaskContext) -> None:
        """Called once per reduce task before any group."""

    def reduce(self, key: Any, values: Sequence[Any], context: TaskContext) -> None:
        """Process one key group; write via ``context.write``."""
        raise NotImplementedError

    def cleanup(self, context: TaskContext) -> None:
        """Called once after the last group."""


class Combiner:
    """Map-side pre-aggregation (Hadoop's combiner).

    Applied to each map task's output before the shuffle: values of equal
    keys emitted by one task are folded into fewer values, cutting shuffle
    volume.  Like Hadoop, the framework may apply it zero or more times, so
    a combiner must be associative and produce values the reducer accepts.
    """

    def combine(self, key: Any, values: Sequence[Any]) -> List[Any]:
        """Fold one task-local key group; return the replacement values."""
        raise NotImplementedError


class Partitioner:
    """Maps an intermediate key to a reduce-task index."""

    def partition(self, key: Any, num_reduce_tasks: int) -> int:
        """Default: stable hash partitioning (Hadoop's HashPartitioner)."""
        return stable_hash(key) % num_reduce_tasks


def stable_hash(key: Any) -> int:
    """A deterministic, process-independent hash for partitioning.

    Python's builtin ``hash`` is salted per process for strings; the
    simulator must be reproducible across runs, so keys are hashed through
    a small FNV-1a over their ``repr``.
    """
    data = repr(key).encode("utf-8")
    acc = 0xCBF29CE484222325
    for byte in data:
        acc ^= byte
        acc = (acc * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return acc


class MapReduceJob:
    """Declarative description of one MapReduce job.

    Attributes:
        mapper_factory: zero-arg callable returning a fresh :class:`Mapper`
            per map task (tasks must not share mutable state).
        reducer_factory: zero-arg callable returning a fresh
            :class:`Reducer` per reduce task.
        partitioner: routes intermediate keys to reduce tasks.
        combiner: optional map-side pre-aggregation.
        key_sort: optional sort key applied to each reduce task's groups
            (Hadoop sorts by key; jobs may override the comparator).
        config: arbitrary job configuration visible to all tasks.
        alpha: incremental-output flush period for reduce tasks (cost units).
        name: label used in diagnostics.
    """

    def __init__(
        self,
        mapper_factory: Callable[[], Mapper],
        reducer_factory: Callable[[], Reducer],
        *,
        partitioner: Optional[Partitioner] = None,
        combiner: Optional[Combiner] = None,
        key_sort: Optional[Callable[[Any], Any]] = None,
        config: Optional[Config] = None,
        alpha: Optional[float] = None,
        name: str = "job",
    ) -> None:
        self.mapper_factory = mapper_factory
        self.reducer_factory = reducer_factory
        self.partitioner = partitioner if partitioner is not None else Partitioner()
        self.combiner = combiner
        self.key_sort = key_sort
        self.config = dict(config) if config else {}
        self.alpha = alpha
        self.name = name


def split_input(records: Sequence[Any], num_splits: int) -> List[List[Any]]:
    """Partition input records into ``num_splits`` contiguous splits.

    Mirrors HDFS block-based splits: contiguous ranges, sizes differing by
    at most one record.  Empty splits are allowed when there are more splits
    than records (Hadoop would simply run empty map tasks).
    """
    if num_splits <= 0:
        raise ValueError(f"num_splits must be positive, got {num_splits}")
    n = len(records)
    base, extra = divmod(n, num_splits)
    splits: List[List[Any]] = []
    start = 0
    for i in range(num_splits):
        size = base + (1 if i < extra else 0)
        splits.append(list(records[start : start + size]))
        start += size
    return splits


__all__ = [
    "TRACE_CONFIG_KEY",
    "TaskContext",
    "Mapper",
    "Reducer",
    "Partitioner",
    "MapReduceJob",
    "split_input",
    "stable_hash",
]
