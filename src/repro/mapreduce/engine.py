"""The cluster simulator: slot scheduling, phases, and job execution.

The paper runs Hadoop 1.2.1 on μ machines with *at most two concurrent map
and two concurrent reduce tasks per machine*, block size tuned so the number
of map tasks equals the number of map slots, and speculative execution
disabled.  :class:`Cluster` reproduces exactly that static-slot model:

* a job's map tasks are scheduled onto ``machines * map_slots`` slots in
  waves (earliest-free-slot first, deterministic tie-break by slot index);
* the reduce phase begins only after the last map task finishes (Hadoop
  cannot invoke ``reduce()`` before the shuffle completes);
* each reduce task is charged shuffle cost proportional to the records it
  receives, then runs its groups to completion.

All time is virtual (see :mod:`repro.mapreduce.clock`).  The *computation*
of each task is delegated to an execution backend
(:mod:`repro.mapreduce.executors`): tasks return per-task cost/event
payloads and the cluster replays them through its :class:`SlotPool` in
task-id order, so virtual-time results are identical whether the tasks ran
serially or on a pool of worker processes.
"""

from __future__ import annotations

import heapq
import math
import time
from typing import TYPE_CHECKING, Any, List, Optional, Sequence

from .clock import CostModel
from .counters import Counters
from .faults import FaultPlan, FaultScheduler, TaskSchedule
from .executors import (
    Executor,
    MapTaskPayload,
    ReduceTaskPayload,
    SerialExecutor,
    default_group_key as _default_key,
    group_by_key as _group_by_key,
    run_job_reset_hooks,
)
from .job import TRACE_CONFIG_KEY, MapReduceJob, split_input
from .types import Event, JobResult, KeyValue, OutputFile, TaskResult

if TYPE_CHECKING:  # observability depends on mapreduce, never the reverse
    from ..observability.metrics import MetricsRegistry
    from ..observability.tracing import Tracer


class SlotPool:
    """A set of identical execution slots with earliest-availability scheduling.

    Backed by a min-heap of ``(free_at, slot_index)`` pairs, so placing a
    task is O(log slots) instead of the O(slots) linear scan a naive
    implementation needs.  Ties on ``free_at`` break by slot index, which
    is exactly the ordering the scan-based version used.
    """

    def __init__(self, num_slots: int, ready_time: float) -> None:
        if num_slots <= 0:
            raise ValueError(f"need at least one slot, got {num_slots}")
        # Already heap-ordered: equal times, ascending slot index.
        self._heap: List[tuple[float, int]] = [
            (ready_time, slot) for slot in range(num_slots)
        ]
        self._makespan = ready_time

    def schedule(self, cost: float) -> tuple[float, float, int]:
        """Place a task of ``cost`` units on the earliest-free slot.

        Returns ``(start_time, end_time, slot_index)`` in global virtual
        time.  The slot index is what the tracer uses as the span's track,
        so a trace viewer lays tasks out exactly as the simulated slots
        executed them.

        ``cost`` must be finite and non-negative.  Zero is legitimate — an
        empty input split produces a zero-cost map task, exactly like
        Hadoop running an empty split — and yields a zero-length attempt
        that still occupies a slot placement.
        """
        if not math.isfinite(cost) or cost < 0:
            raise ValueError(f"task cost must be finite and >= 0, got {cost}")
        start, slot = heapq.heappop(self._heap)
        end = start + cost
        heapq.heappush(self._heap, (end, slot))
        if end > self._makespan:
            self._makespan = end
        return start, end, slot

    @property
    def makespan(self) -> float:
        """Global time at which every slot is free again."""
        return self._makespan


class Cluster:
    """A simulated Hadoop cluster.

    Args:
        machines: number of worker machines (μ in the paper).
        map_slots: concurrent map tasks per machine (paper: 2).
        reduce_slots: concurrent reduce tasks per machine (paper: 2).
        cost_model: unit costs charged to every task clock.
        executor: execution backend running the per-task computations
            (default: :class:`~repro.mapreduce.executors.SerialExecutor`).
            Backends only change wall-clock time, never virtual time.
        tracer: optional :class:`~repro.observability.tracing.Tracer`
            recording job/phase/task/block spans in virtual time.  Pure
            observation: attaching one never changes events, counters or
            timestamps, and ``None`` (the default) costs nothing.
        metrics: optional
            :class:`~repro.observability.metrics.MetricsRegistry` receiving
            cumulative counter snapshots at the end of each phase.
        faults: optional :class:`~repro.mapreduce.faults.FaultPlan`
            injecting seeded crashes, stragglers and (optionally)
            speculative execution into every job run on this cluster.
            Fault decisions replay from the seeded plan in the driver, so
            they are identical on every execution backend.
        slot_broker: optional multi-tenant capacity broker (see
            :mod:`repro.scheduling`).  When set, each phase checks its
            slots out of a shared pool instead of building a private
            :class:`SlotPool` — the broker decides *when* the phase may
            start and *which* lane free-times it inherits, while task
            computation and placement order are untouched.  ``None``
            (the default) keeps the classic one-job-owns-the-cluster
            timeline bit-identical to previous behaviour.
    """

    def __init__(
        self,
        machines: int,
        *,
        map_slots: int = 2,
        reduce_slots: int = 2,
        cost_model: Optional[CostModel] = None,
        executor: Optional[Executor] = None,
        tracer: "Optional[Tracer]" = None,
        metrics: "Optional[MetricsRegistry]" = None,
        faults: Optional[FaultPlan] = None,
        slot_broker: Optional[Any] = None,
    ) -> None:
        if machines <= 0:
            raise ValueError(f"machines must be positive, got {machines}")
        self.machines = machines
        self.map_slots = map_slots
        self.reduce_slots = reduce_slots
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.executor = executor if executor is not None else SerialExecutor()
        self.tracer = tracer
        self.metrics = metrics
        self.faults = faults
        self.slot_broker = slot_broker

    @property
    def num_map_tasks(self) -> int:
        """Default map parallelism: one wave filling every map slot."""
        return self.machines * self.map_slots

    @property
    def num_reduce_tasks(self) -> int:
        """Default reduce parallelism: one task per reduce slot."""
        return self.machines * self.reduce_slots

    # ------------------------------------------------------------------

    def run_job(
        self,
        job: MapReduceJob,
        records: Sequence[Any],
        *,
        start_time: float = 0.0,
        num_map_tasks: Optional[int] = None,
        num_reduce_tasks: Optional[int] = None,
        map_failures: Optional[dict] = None,
        reduce_failures: Optional[dict] = None,
        executor: Optional[Executor] = None,
        faults: Optional[FaultPlan] = None,
    ) -> JobResult:
        """Execute one MapReduce job and return its :class:`JobResult`.

        ``records`` is the logical input file; it is split contiguously
        across map tasks.  ``start_time`` lets callers chain jobs (Job 2
        starts when Job 1 ends).  ``executor`` overrides the cluster's
        backend for this job only.

        ``map_failures`` / ``reduce_failures`` inject legacy Hadoop-style
        task failures: ``{task_id: attempts_that_fail}``.  A failed attempt
        occupies its slot for the task's full cost, then the framework
        re-executes the task from scratch — results are identical, only
        the timeline stretches (Hadoop's deterministic-retry fault model).

        ``faults`` overrides the cluster's :class:`FaultPlan` for this job
        only: seeded partial-cost crashes, straggler slowdowns, retry
        backoff and speculative execution (see
        :mod:`repro.mapreduce.faults`).  The two fault models are mutually
        exclusive — a seeded plan cannot be combined with the explicit
        failure dicts.
        """
        plan = faults if faults is not None else self.faults
        if plan is not None and (map_failures or reduce_failures):
            raise ValueError(
                "a FaultPlan cannot be combined with the legacy "
                "map_failures/reduce_failures dicts; pick one fault model"
            )
        n_map = num_map_tasks if num_map_tasks is not None else self.num_map_tasks
        n_red = num_reduce_tasks if num_reduce_tasks is not None else self.num_reduce_tasks
        job.config.setdefault("num_reduce_tasks", n_red)
        job.config.setdefault("num_map_tasks", n_map)
        # Plain assignment, not setdefault: a job object may be reused
        # against clusters with and without a tracer.
        job.config[TRACE_CONFIG_KEY] = self.tracer is not None
        backend = executor if executor is not None else self.executor
        # Reset process-global wall-clock caches (similarity memo et al.) so
        # per-job `matcher.*` metrics describe this job, not every job the
        # process ever ran; parallel workers run the same hooks at fork.
        run_job_reset_hooks()

        counters = Counters()
        # Wall-clock / IPC bookkeeping per phase.  Strictly observational
        # and backend-dependent by nature, so it lives in the metrics
        # registry (and the backend's own `stats`), never in job counters.
        aux = Counters()
        splits = split_input(records, n_map)
        # The splits must exist before the pool forks: the parallel backend
        # hands them to workers via copy-on-write inheritance.
        backend.begin_job(job, splits, self.cost_model)
        try:
            wall_start = time.perf_counter()
            map_results, partitions = self._run_map_phase(
                job, splits, n_red, start_time, counters, aux,
                map_failures or {}, backend, plan,
            )
            map_wall = time.perf_counter() - wall_start
            map_phase_end = max((t.end_time for t in map_results), default=start_time)
            _record_cost_skew(aux, "map", [t.cost for t in map_results])
            self._snapshot_phase(
                f"{job.name}/map", counters, aux, backend,
                tasks=len(map_results), phase_end=map_phase_end, wall=map_wall,
            )

            wall_start = time.perf_counter()
            reduce_results, files = self._run_reduce_phase(
                job, partitions, n_red, map_phase_end, counters, aux,
                reduce_failures or {}, backend, plan,
            )
            reduce_wall = time.perf_counter() - wall_start
            end_time = max((t.end_time for t in reduce_results), default=map_phase_end)
            _record_cost_skew(aux, "reduce", [t.cost for t in reduce_results])
            self._snapshot_phase(
                f"{job.name}/reduce", counters, aux, backend,
                tasks=len(reduce_results), phase_end=end_time, wall=reduce_wall,
            )
        finally:
            backend.end_job()
        if self.tracer is not None:
            self.tracer.record_span(
                job.name, "job", start_time, end_time, job=job.name
            )
            self.tracer.record_span(
                "map-phase", "phase", start_time, map_phase_end,
                job=job.name, tasks=len(map_results),
            )
            self.tracer.record_span(
                "reduce-phase", "phase", map_phase_end, end_time,
                job=job.name, tasks=len(reduce_results),
            )

        events: List[Event] = []
        for task in map_results + reduce_results:
            events.extend(task.events)
        events.sort(key=lambda e: (e.time, e.kind))

        output: List[Any] = []
        for task in reduce_results:
            output.extend(task.output)

        return JobResult(
            start_time=start_time,
            map_phase_end=map_phase_end,
            end_time=end_time,
            map_tasks=map_results,
            reduce_tasks=reduce_results,
            events=events,
            output=output,
            output_files=files,
            counters=counters,
        )

    # ------------------------------------------------------------------

    def _snapshot_phase(
        self,
        scope: str,
        counters: Counters,
        aux: Counters,
        backend: Executor,
        *,
        tasks: int,
        phase_end: float,
        wall: float,
    ) -> None:
        """Record one phase in the metrics registry (no-op without one).

        The snapshot carries the cumulative job counters plus two strictly
        observational layers: the backend's per-phase performance
        statistics (``driver.pool_forks``, ``driver.ipc_bytes``, …) and the
        task-stat aggregates carried in payloads (``matcher.cache_hits``,
        …).  Both are wall-clock facts that legitimately differ between
        backends, which is why they are surfaced here and never merged
        into the backend-identical job counters.
        """
        perf = backend.drain_stats()
        if self.metrics is None:
            return
        flat = counters.as_flat_dict()
        for name, value in sorted(perf.items()):
            if value:
                flat[f"driver.{name}"] = value
        for (group, name), value in sorted(aux.items()):
            flat[f"{group}.{name}"] = value
        self.metrics.snapshot(
            scope,
            flat,
            backend=backend.name,
            tasks=tasks,
            phase_end=phase_end,
            wall_seconds=round(wall, 6),
        )

    @staticmethod
    def _collect_stat_deltas(aux: Counters, payload: Any) -> None:
        """Fold a payload's per-task process statistics into ``aux``."""
        for group, name, delta in payload.stat_deltas:
            aux.increment(group, name, delta)

    def _run_map_phase(
        self,
        job: MapReduceJob,
        splits: List[List[Any]],
        n_red: int,
        start_time: float,
        counters: Counters,
        aux: Counters,
        failures: dict,
        backend: Executor,
        faults: Optional[FaultPlan],
    ) -> tuple[List[TaskResult], List[List[KeyValue]]]:
        """Run all map tasks; return task results and per-reducer partitions.

        The backend computes the payloads (possibly on worker processes);
        scheduling, counter aggregation and partitioning replay them here,
        in task-id order, so the timeline never depends on the backend.
        """
        payloads = backend.run_map_phase(job, splits, self.cost_model)
        pool = self._phase_pool(
            job, "map", self.machines * self.map_slots, start_time
        )
        schedules = self._fault_schedules(
            faults, job, "map", self.machines * self.map_slots, start_time,
            payloads, counters, pool,
        )
        partitions: List[List[KeyValue]] = [[] for _ in range(n_red)]
        results: List[TaskResult] = []

        for payload in payloads:
            task_id = payload.task_id
            counters.merge(payload.counters)
            self._collect_stat_deltas(aux, payload)
            if job.combiner is not None:
                counters.increment("engine", "combine_input", payload.combine_input)
                counters.increment("engine", "combine_output", payload.combine_output)
            counters.increment("engine", "map_records", payload.num_records)
            counters.increment("engine", "map_emitted", len(payload.emitted))

            if schedules is None:
                retries = failures.get(task_id, 0)
                start, end, attempt_start, slot = self._schedule_attempts(
                    pool, payload.cost, retries
                )
                counters.increment("engine", "map_retries", retries)
                self._trace_task(
                    job, "map", payload, start, end, attempt_start, slot, retries
                )
                stretch = 1.0
                failed_attempts = retries
                speculative = False
            else:
                sched = schedules[task_id]
                win = sched.winning
                start, end, attempt_start = sched.attempts[0].start, win.end, win.start
                stretch = faults.slot_slowdown(win.slot)
                retries = sum(
                    1
                    for a in sched.attempts
                    if a.outcome == "failed" and not a.speculative
                )
                counters.increment("engine", "map_retries", retries)
                self._trace_task_faulty(job, "map", payload, sched, stretch)
                failed_attempts = sched.num_failed
                speculative = win.speculative
            results.append(
                TaskResult(
                    task_id=task_id,
                    cost=payload.cost,
                    start_time=start,
                    end_time=end,
                    events=[
                        Event(
                            time=attempt_start + e.time * stretch,
                            kind=e.kind,
                            payload=e.payload,
                        )
                        for e in payload.events
                    ],
                    output=payload.emitted,
                    num_failed_attempts=failed_attempts,
                    speculative=speculative,
                    wall_ns=payload.wall_ns,
                    charge_profile=payload.charge_profile,
                )
            )
            for key, value in payload.emitted:
                idx = job.partitioner.partition(key, n_red)
                if not 0 <= idx < n_red:
                    raise ValueError(
                        f"partitioner returned {idx} for key {key!r}; "
                        f"valid range is [0, {n_red})"
                    )
                partitions[idx].append((key, value))
        return results, partitions

    def _phase_pool(
        self, job: MapReduceJob, phase: str, num_slots: int, ready_time: float
    ) -> Any:
        """The slot pool one phase places its tasks into.

        Without a broker this is the classic private :class:`SlotPool`
        (every slot free at phase start).  With a broker, the call
        *blocks* until the multi-tenant scheduler dispatches this phase,
        and the returned lease carries the shared lanes' current free
        times — the phase queues behind other tenants' commitments
        instead of pretending it owns an idle cluster.
        """
        if self.slot_broker is None:
            return SlotPool(num_slots, ready_time)
        return self.slot_broker.lease_phase(
            kind=phase, job=job.name, ready_time=ready_time
        )

    def _fault_schedules(
        self,
        faults: Optional[FaultPlan],
        job: MapReduceJob,
        phase: str,
        num_slots: int,
        phase_start: float,
        payloads: Sequence[Any],
        counters: Counters,
        pool: Any = None,
    ) -> Optional[List[TaskSchedule]]:
        """Simulate the phase under a fault plan; ``None`` without one.

        Runs entirely in the driver on the payloads' virtual costs, so the
        resulting timeline is identical on every execution backend.  Fault
        statistics land in the ``fault.*`` counter namespace (only non-zero
        values are recorded, so an inert plan leaves counters untouched).

        When ``pool`` is a multi-tenant lease, the simulator is seeded
        with the shared lanes' current free times (and the grant-time
        floor) and its final per-slot free times are committed back, so a
        per-job fault plan stretches only this job's phase on the shared
        timeline.  Crash decisions key on task ids and attempt ordinals —
        never on absolute times — so the *number* of injected faults is
        identical to a solo run of the same plan.
        """
        if faults is None:
            return None
        lanes = getattr(pool, "lane_free_times", None)
        if lanes is None:
            scheduler = FaultScheduler(
                faults, num_slots, phase_start, job=job.name, phase=phase
            )
        else:
            floor = max(phase_start, pool.floor)
            scheduler = FaultScheduler(
                faults, len(lanes), floor, job=job.name, phase=phase,
                slot_free_times=lanes,
            )
        schedules = scheduler.run([p.cost for p in payloads])
        if lanes is not None:
            pool.commit_fault(scheduler.final_free_times, schedules)
        stats = scheduler.stats
        for name, value in (
            ("failed_attempts", stats.failed_attempts),
            ("retries", stats.retries),
            ("speculative_launched", stats.speculative_launched),
            ("speculative_wins", stats.speculative_wins),
            ("speculative_failed", stats.speculative_failed),
            ("killed_attempts", stats.killed_attempts),
            ("blacklisted_slots", stats.blacklisted_slots),
        ):
            if value:
                counters.increment("fault", f"{phase}_{name}", value)
        return schedules

    @staticmethod
    def _schedule_attempts(
        pool: SlotPool, cost: float, failed_attempts: int
    ) -> tuple[float, float, float, int]:
        """Place a task with ``failed_attempts`` full-cost failed attempts
        before the successful one; returns
        (start, end, successful start, slot index)."""
        total = cost * (failed_attempts + 1)
        start, end, slot = pool.schedule(total)
        return start, end, start + cost * failed_attempts, slot

    def _trace_task(
        self,
        job: MapReduceJob,
        phase: str,
        payload: Any,
        start: float,
        end: float,
        attempt_start: float,
        slot: int,
        retries: int,
    ) -> None:
        """Record one scheduled task: failed attempts, the successful
        attempt, and the task-local span fragments rebased to global time."""
        trace = self.tracer
        if trace is None:
            return
        track = slot + 1  # track 0 belongs to job/phase spans
        task_id = payload.task_id
        for attempt in range(retries):
            trace.record_span(
                f"{phase}-{task_id}/attempt-{attempt}",
                "attempt",
                start + attempt * payload.cost,
                start + (attempt + 1) * payload.cost,
                job=job.name,
                track=track,
                task=task_id,
                phase=phase,
                failed=True,
            )
        trace.record_span(
            f"{phase}-{task_id}",
            "task",
            attempt_start,
            end,
            job=job.name,
            track=track,
            task=task_id,
            phase=phase,
            cost=payload.cost,
            records=payload.num_records,
        )
        for fragment in payload.spans:
            trace.record_span(
                fragment.name,
                fragment.category,
                attempt_start + fragment.start,
                attempt_start + fragment.end,
                job=job.name,
                track=track,
                **dict(fragment.args),
            )

    def _trace_task_faulty(
        self,
        job: MapReduceJob,
        phase: str,
        payload: Any,
        sched: TaskSchedule,
        stretch: float,
    ) -> None:
        """Record a fault-scheduled task: every failed/killed attempt, the
        winning attempt as the task span, and the task-local span fragments
        rebased — and stretched by the winning slot's slowdown — to global
        time.  Retry/speculation markers are added only when present, so an
        attempt-0 non-speculative win emits spans byte-identical to
        :meth:`_trace_task` with zero retries."""
        trace = self.tracer
        if trace is None:
            return
        task_id = payload.task_id
        win = sched.winning
        for att in sched.attempts:
            if att.outcome == "success":
                continue
            extra: dict = {att.outcome: True}
            if att.speculative:
                extra["speculative"] = True
            trace.record_span(
                f"{phase}-{task_id}/attempt-{att.attempt}",
                "attempt",
                att.start,
                att.end,
                job=job.name,
                track=att.slot + 1,
                task=task_id,
                phase=phase,
                **extra,
            )
        extra = {}
        if win.attempt > 0:
            extra["attempt"] = win.attempt
        if win.speculative:
            extra["speculative"] = True
        trace.record_span(
            f"{phase}-{task_id}",
            "task",
            win.start,
            win.end,
            job=job.name,
            track=win.slot + 1,
            task=task_id,
            phase=phase,
            cost=payload.cost,
            records=payload.num_records,
            **extra,
        )
        for fragment in payload.spans:
            trace.record_span(
                fragment.name,
                fragment.category,
                win.start + fragment.start * stretch,
                win.start + fragment.end * stretch,
                job=job.name,
                track=win.slot + 1,
                **dict(fragment.args),
            )

    def _run_reduce_phase(
        self,
        job: MapReduceJob,
        partitions: List[List[KeyValue]],
        n_red: int,
        phase_start: float,
        counters: Counters,
        aux: Counters,
        failures: dict,
        backend: Executor,
        faults: Optional[FaultPlan],
    ) -> tuple[List[TaskResult], List[OutputFile]]:
        """Run all reduce tasks; return task results and output files."""
        payloads = backend.run_reduce_phase(job, partitions, self.cost_model)
        pool = self._phase_pool(
            job, "reduce", self.machines * self.reduce_slots, phase_start
        )
        schedules = self._fault_schedules(
            faults, job, "reduce", self.machines * self.reduce_slots,
            phase_start, payloads, counters, pool,
        )
        results: List[TaskResult] = []
        all_files: List[OutputFile] = []

        for payload in payloads:
            task_id = payload.task_id
            counters.merge(payload.counters)
            self._collect_stat_deltas(aux, payload)
            counters.increment("engine", "reduce_groups", payload.num_groups)
            counters.increment("engine", "reduce_records", payload.num_records)

            if schedules is None:
                retries = failures.get(task_id, 0)
                start, end, attempt_start, slot = self._schedule_attempts(
                    pool, payload.cost, retries
                )
                counters.increment("engine", "reduce_retries", retries)
                self._trace_task(
                    job, "reduce", payload, start, end, attempt_start, slot, retries
                )
                stretch = 1.0
                failed_attempts = retries
                speculative = False
            else:
                sched = schedules[task_id]
                win = sched.winning
                start, end, attempt_start, slot = (
                    sched.attempts[0].start, win.end, win.start, win.slot
                )
                stretch = faults.slot_slowdown(win.slot)
                retries = sum(
                    1
                    for a in sched.attempts
                    if a.outcome == "failed" and not a.speculative
                )
                counters.increment("engine", "reduce_retries", retries)
                self._trace_task_faulty(job, "reduce", payload, sched, stretch)
                failed_attempts = sched.num_failed
                speculative = win.speculative
            for f in payload.files:
                # Rebase the task-local close time to global time, scaled
                # by the winning attempt's slowdown (stretch is exactly 1.0
                # on a healthy slot, so this is bit-identical to the plain
                # ``close_time += attempt_start`` rebase).
                f.close_time = attempt_start + f.close_time * stretch
                if self.tracer is not None:
                    self.tracer.record_instant(
                        f"flush-{task_id}.{f.index}",
                        "flush",
                        f.close_time,
                        job=job.name,
                        track=slot + 1,
                        task=task_id,
                        records=len(f.records),
                    )
            all_files.extend(payload.files)
            results.append(
                TaskResult(
                    task_id=task_id,
                    cost=payload.cost,
                    start_time=start,
                    end_time=end,
                    events=[
                        Event(
                            time=attempt_start + e.time * stretch,
                            kind=e.kind,
                            payload=e.payload,
                        )
                        for e in payload.events
                    ],
                    output=payload.written,
                    num_failed_attempts=failed_attempts,
                    speculative=speculative,
                    wall_ns=payload.wall_ns,
                    charge_profile=payload.charge_profile,
                )
            )
        return results, all_files


def _record_cost_skew(aux: Counters, phase: str, costs: Sequence[float]) -> None:
    """Per-phase virtual-cost skew, surfaced as ``balance.*`` metrics.

    Virtual task costs are backend-identical, so these aux values are
    deterministic; they ride the metrics snapshots (like the rest of the
    aux layer) because they are observational, not part of a job's logical
    output.  Milli-scaled to stay integers like every other counter.
    """
    if not costs:
        return
    mean = sum(costs) / len(costs)
    if mean <= 0:
        return
    peak = max(costs)
    aux.increment("balance", f"{phase}_cost_max_milli", int(round(peak * 1000)))
    aux.increment(
        "balance", f"{phase}_cost_max_over_mean_milli", int(round(peak / mean * 1000))
    )


__all__ = ["Cluster", "SlotPool"]
