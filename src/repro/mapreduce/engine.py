"""The cluster simulator: slot scheduling, phases, and job execution.

The paper runs Hadoop 1.2.1 on μ machines with *at most two concurrent map
and two concurrent reduce tasks per machine*, block size tuned so the number
of map tasks equals the number of map slots, and speculative execution
disabled.  :class:`Cluster` reproduces exactly that static-slot model:

* a job's map tasks are scheduled onto ``machines * map_slots`` slots in
  waves (earliest-free-slot first, deterministic tie-break by slot index);
* the reduce phase begins only after the last map task finishes (Hadoop
  cannot invoke ``reduce()`` before the shuffle completes);
* each reduce task is charged shuffle cost proportional to the records it
  receives, then runs its groups to completion.

All time is virtual (see :mod:`repro.mapreduce.clock`).
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

from .clock import CostModel
from .counters import Counters
from .job import MapReduceJob, TaskContext, split_input
from .types import Event, JobResult, KeyValue, OutputFile, TaskResult


class SlotPool:
    """A set of identical execution slots with earliest-availability scheduling."""

    def __init__(self, num_slots: int, ready_time: float) -> None:
        if num_slots <= 0:
            raise ValueError(f"need at least one slot, got {num_slots}")
        self._free_at = [ready_time] * num_slots

    def schedule(self, cost: float) -> tuple[float, float]:
        """Place a task of ``cost`` units on the earliest-free slot.

        Returns ``(start_time, end_time)`` in global virtual time.
        """
        slot = min(range(len(self._free_at)), key=lambda i: (self._free_at[i], i))
        start = self._free_at[slot]
        end = start + cost
        self._free_at[slot] = end
        return start, end

    @property
    def makespan(self) -> float:
        """Global time at which every slot is free again."""
        return max(self._free_at)


class Cluster:
    """A simulated Hadoop cluster.

    Args:
        machines: number of worker machines (μ in the paper).
        map_slots: concurrent map tasks per machine (paper: 2).
        reduce_slots: concurrent reduce tasks per machine (paper: 2).
        cost_model: unit costs charged to every task clock.
    """

    def __init__(
        self,
        machines: int,
        *,
        map_slots: int = 2,
        reduce_slots: int = 2,
        cost_model: Optional[CostModel] = None,
    ) -> None:
        if machines <= 0:
            raise ValueError(f"machines must be positive, got {machines}")
        self.machines = machines
        self.map_slots = map_slots
        self.reduce_slots = reduce_slots
        self.cost_model = cost_model if cost_model is not None else CostModel()

    @property
    def num_map_tasks(self) -> int:
        """Default map parallelism: one wave filling every map slot."""
        return self.machines * self.map_slots

    @property
    def num_reduce_tasks(self) -> int:
        """Default reduce parallelism: one task per reduce slot."""
        return self.machines * self.reduce_slots

    # ------------------------------------------------------------------

    def run_job(
        self,
        job: MapReduceJob,
        records: Sequence[Any],
        *,
        start_time: float = 0.0,
        num_map_tasks: Optional[int] = None,
        num_reduce_tasks: Optional[int] = None,
        map_failures: Optional[dict] = None,
        reduce_failures: Optional[dict] = None,
    ) -> JobResult:
        """Execute one MapReduce job and return its :class:`JobResult`.

        ``records`` is the logical input file; it is split contiguously
        across map tasks.  ``start_time`` lets callers chain jobs (Job 2
        starts when Job 1 ends).

        ``map_failures`` / ``reduce_failures`` inject Hadoop-style task
        failures: ``{task_id: attempts_that_fail}``.  A failed attempt
        occupies its slot for the task's full cost, then the framework
        re-executes the task from scratch — results are identical, only
        the timeline stretches (Hadoop's deterministic-retry fault model).
        """
        n_map = num_map_tasks if num_map_tasks is not None else self.num_map_tasks
        n_red = num_reduce_tasks if num_reduce_tasks is not None else self.num_reduce_tasks
        job.config.setdefault("num_reduce_tasks", n_red)
        job.config.setdefault("num_map_tasks", n_map)

        counters = Counters()
        map_results, partitions = self._run_map_phase(
            job, records, n_map, n_red, start_time, counters,
            map_failures or {},
        )
        map_phase_end = max((t.end_time for t in map_results), default=start_time)

        reduce_results, files = self._run_reduce_phase(
            job, partitions, n_red, map_phase_end, counters,
            reduce_failures or {},
        )
        end_time = max((t.end_time for t in reduce_results), default=map_phase_end)

        events: List[Event] = []
        for task in map_results + reduce_results:
            events.extend(task.events)
        events.sort(key=lambda e: (e.time, e.kind))

        output: List[Any] = []
        for task in reduce_results:
            output.extend(task.output)

        return JobResult(
            start_time=start_time,
            map_phase_end=map_phase_end,
            end_time=end_time,
            map_tasks=map_results,
            reduce_tasks=reduce_results,
            events=events,
            output=output,
            output_files=files,
            counters=counters,
        )

    # ------------------------------------------------------------------

    def _run_map_phase(
        self,
        job: MapReduceJob,
        records: Sequence[Any],
        n_map: int,
        n_red: int,
        start_time: float,
        counters: Counters,
        failures: dict,
    ) -> tuple[List[TaskResult], List[List[KeyValue]]]:
        """Run all map tasks; return task results and per-reducer partitions."""
        splits = split_input(records, n_map)
        pool = SlotPool(self.machines * self.map_slots, start_time)
        partitions: List[List[KeyValue]] = [[] for _ in range(n_red)]
        results: List[TaskResult] = []

        for task_id, split in enumerate(splits):
            context = TaskContext(task_id, self.cost_model, job.config)
            mapper = job.mapper_factory()
            mapper.setup(context)
            for record in split:
                context.charge(self.cost_model.read_record)
                mapper.map(record, context)
            mapper.cleanup(context)
            emitted = context.emitted
            if job.combiner is not None:
                emitted = self._apply_combiner(job, emitted, context, counters)
            counters.merge(context.counters)
            counters.increment("map", "records", len(split))
            counters.increment("map", "emitted", len(emitted))

            start, end, attempt_start = self._schedule_attempts(
                pool, context.clock.now, failures.get(task_id, 0)
            )
            counters.increment("map", "retries", failures.get(task_id, 0))
            results.append(
                TaskResult(
                    task_id=task_id,
                    cost=context.clock.now,
                    start_time=start,
                    end_time=end,
                    events=[
                        Event(time=attempt_start + e.time, kind=e.kind, payload=e.payload)
                        for e in context.emitted_events
                    ],
                    output=emitted,
                )
            )
            for key, value in emitted:
                idx = job.partitioner.partition(key, n_red)
                if not 0 <= idx < n_red:
                    raise ValueError(
                        f"partitioner returned {idx} for key {key!r}; "
                        f"valid range is [0, {n_red})"
                    )
                partitions[idx].append((key, value))
        return results, partitions

    def _apply_combiner(
        self,
        job: MapReduceJob,
        emitted: List[KeyValue],
        context: TaskContext,
        counters: Counters,
    ) -> List[KeyValue]:
        """Fold a map task's output through the job's combiner."""
        assert job.combiner is not None
        context.charge(self.cost_model.sort_cost(len(emitted)))
        groups = _group_by_key(emitted)
        combined: List[KeyValue] = []
        for key, values in groups.items():
            for value in job.combiner.combine(key, values):
                combined.append((key, value))
        counters.increment("combine", "input", len(emitted))
        counters.increment("combine", "output", len(combined))
        return combined

    @staticmethod
    def _schedule_attempts(
        pool: SlotPool, cost: float, failed_attempts: int
    ) -> tuple[float, float, float]:
        """Place a task with ``failed_attempts`` full-cost failed attempts
        before the successful one; returns (start, end, successful start)."""
        total = cost * (failed_attempts + 1)
        start, end = pool.schedule(total)
        return start, end, start + cost * failed_attempts

    def _run_reduce_phase(
        self,
        job: MapReduceJob,
        partitions: List[List[KeyValue]],
        n_red: int,
        phase_start: float,
        counters: Counters,
        failures: dict,
    ) -> tuple[List[TaskResult], List[OutputFile]]:
        """Run all reduce tasks; return task results and output files."""
        pool = SlotPool(self.machines * self.reduce_slots, phase_start)
        results: List[TaskResult] = []
        all_files: List[OutputFile] = []

        for task_id in range(n_red):
            items = partitions[task_id]
            context = TaskContext(
                task_id, self.cost_model, job.config, alpha=job.alpha
            )
            # Shuffle: pull records in, then sort groups by key.
            context.charge(self.cost_model.shuffle_record * len(items))
            groups = _group_by_key(items)
            keys = list(groups.keys())
            sort_key = job.key_sort
            keys.sort(key=sort_key if sort_key is not None else _default_key)
            context.charge(self.cost_model.sort_cost(len(items)))

            reducer = job.reducer_factory()
            reducer.setup(context)
            for key in keys:
                reducer.reduce(key, groups[key], context)
            reducer.cleanup(context)
            counters.merge(context.counters)
            counters.increment("reduce", "groups", len(keys))
            counters.increment("reduce", "records", len(items))

            start, end, attempt_start = self._schedule_attempts(
                pool, context.clock.now, failures.get(task_id, 0)
            )
            counters.increment("reduce", "retries", failures.get(task_id, 0))
            files = context.finalize_files()
            for f in files:
                f.close_time += attempt_start  # rebase to global time
            all_files.extend(files)
            results.append(
                TaskResult(
                    task_id=task_id,
                    cost=context.clock.now,
                    start_time=start,
                    end_time=end,
                    events=[
                        Event(time=attempt_start + e.time, kind=e.kind, payload=e.payload)
                        for e in context.emitted_events
                    ],
                    output=context.written,
                )
            )
        return results, all_files


def _group_by_key(items: Sequence[KeyValue]) -> "dict[Any, List[Any]]":
    """Group shuffled key-value pairs by key, preserving arrival order."""
    groups: dict[Any, List[Any]] = {}
    for key, value in items:
        groups.setdefault(key, []).append(value)
    return groups


def _default_key(key: Any) -> Any:
    """Default group ordering: natural key order with a repr fallback."""
    return (0, key) if isinstance(key, (int, float)) else (1, repr(key))


__all__ = ["Cluster", "SlotPool"]
