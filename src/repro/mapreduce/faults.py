"""Seeded fault injection, retries, and speculative execution.

The paper's progressive schedule is only valuable if the cluster keeps
maximizing the early-duplicate rate *while tasks fail and straggle* — skew
and node slowdown are the dominant real-world hazards for MapReduce-based
ER (Kolb et al., "Load Balancing for MapReduce-based Entity Resolution").
This module replaces the engine's historical ``{task_id: n}`` failure dict
with a full fault model:

* :class:`FaultPlan` — a **seeded, deterministic** description of what goes
  wrong: per-attempt crash decisions (an attempt crashes at a fraction of
  its cost, so the partial work is lost), per-slot straggler slowdown
  multipliers, and slot blacklisting after ``K`` failures;
* :class:`RetryPolicy` — how the framework reacts: a maximum attempt count,
  exponential backoff in *virtual* time, and :class:`JobAbortedError` when
  a task exhausts its attempts;
* :class:`SpeculationConfig` — Hadoop-style speculative execution: when a
  slot is idle and a running attempt's projected duration exceeds
  ``threshold ×`` the median attempt duration seen so far, a backup attempt
  is launched on the idle slot.  The first attempt to finish wins; the
  loser is killed and its slot reclaimed.

Determinism contract
--------------------
Every fault decision is a pure function of the plan's seed and a stable
identifier — ``(job name, phase, task id, attempt ordinal)`` for crashes,
``slot index`` for stragglers — hashed through
:func:`~repro.mapreduce.job.stable_hash`.  Nothing depends on wall-clock
time, iteration order, or the execution backend: the
:class:`FaultScheduler` runs in the driver process on the per-task costs
the backend computed, so serial and process backends stay **bit-for-bit
identical** under any plan (pinned by ``tests/test_property_faults.py``).

Keying the crash decision by the number of *prior failures* of the task
(not by a global draw sequence) makes the failure set monotone in
``fault_rate``: raising the rate can only turn more attempts into
failures, never fewer — which is what makes "makespan is monotone
non-decreasing in the fault rate" a testable property.

The scheduler is a small discrete-event simulation over virtual time.
Because the simulator is omniscient (an attempt's duration is known the
moment it is placed), "events" reduce to attempt completions; slots commit
to attempts eagerly, exactly like the engine's wave scheduling.  With an
all-zero plan the simulation degenerates to
:class:`~repro.mapreduce.engine.SlotPool`'s earliest-free-slot placement
in task-id order, byte-identical to a run without any fault plan attached.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple, Union

from .job import stable_hash

#: Crash points are drawn uniformly from this fraction range of the
#: attempt's effective cost — an attempt never dies instantly at 0 nor
#: "almost finishes" at 1, keeping partial-cost loss visible in timelines.
MIN_CRASH_FRACTION = 0.05
MAX_CRASH_FRACTION = 0.95

_MASK64 = 0xFFFFFFFFFFFFFFFF


def _avalanche(x: int) -> int:
    """splitmix64 finalizer: full-width bit diffusion over a 64-bit hash.

    :func:`~repro.mapreduce.job.stable_hash` is FNV-1a, whose final bytes
    barely reach the high bits — keys differing only in a trailing attempt
    ordinal would yield nearly identical uniforms (so a task that failed
    once would fail every retry).  One avalanche round makes the draws
    behave independently per key.
    """
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


class JobAbortedError(RuntimeError):
    """A task exhausted its retry budget; the framework kills the job."""

    def __init__(self, phase: str, task_id: int, attempts: int) -> None:
        super().__init__(
            f"{phase} task {task_id} failed {attempts} attempts "
            f"(retry budget exhausted); job aborted"
        )
        self.phase = phase
        self.task_id = task_id
        self.attempts = attempts


@dataclass(frozen=True)
class RetryPolicy:
    """How the framework reacts to a failed attempt.

    Attributes:
        max_attempts: total attempts a task may consume (failed speculative
            attempts count too, like Hadoop's ``mapred.map.max.attempts``).
            Exhaustion raises :class:`JobAbortedError`.
        backoff_base: virtual-time delay before the first retry; ``0``
            retries immediately (the legacy behaviour).
        backoff_factor: multiplier applied per additional failure
            (exponential backoff: ``base * factor ** (failures - 1)``).
    """

    max_attempts: int = 4
    backoff_base: float = 0.0
    backoff_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_base < 0:
            raise ValueError(f"backoff_base must be >= 0, got {self.backoff_base}")
        if self.backoff_factor < 1:
            raise ValueError(f"backoff_factor must be >= 1, got {self.backoff_factor}")

    def backoff(self, failures: int) -> float:
        """Virtual-time delay before the retry following failure number
        ``failures`` (1-based)."""
        if self.backoff_base <= 0 or failures < 1:
            return 0.0
        return self.backoff_base * self.backoff_factor ** (failures - 1)


@dataclass(frozen=True)
class SpeculationConfig:
    """Hadoop-style speculative execution.

    When enabled, an idle slot may run a backup of a task whose running
    attempt's projected duration exceeds ``threshold ×`` the median
    duration of all attempts placed so far in the phase.  At most one
    backup per task is ever launched; the first finisher wins and the
    loser is killed (counted as wasted work).
    """

    enabled: bool = False
    threshold: float = 1.5

    def __post_init__(self) -> None:
        if self.threshold <= 1.0:
            raise ValueError(
                f"speculation threshold must exceed 1.0, got {self.threshold}"
            )


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, deterministic description of everything that goes wrong.

    Attributes:
        seed: root of every hash-derived decision below.
        fault_rate: probability that any given task attempt crashes.
        straggler_rate: probability that any given slot is a straggler.
        straggler_factor: cost multiplier of a straggler slot (>= 1).
        slot_slowdowns: explicit per-slot overrides (``{slot: factor}``),
            taking precedence over the seeded straggler draw — used by
            benchmarks and tests that need a known-slow slot.
        blacklist_after: blacklist a slot after this many failures on it
            (``None`` disables).  The last usable slot is never
            blacklisted, so a phase can always finish.
        retry: the framework's :class:`RetryPolicy`.
        speculation: the framework's :class:`SpeculationConfig`.

    A default-constructed plan is inert: no crashes, no stragglers, no
    speculation — scheduling through it is byte-identical to scheduling
    without it.
    """

    seed: int = 0
    fault_rate: float = 0.0
    straggler_rate: float = 0.0
    straggler_factor: float = 1.0
    slot_slowdowns: Union[Tuple[Tuple[int, float], ...], Mapping[int, float]] = ()
    blacklist_after: Optional[int] = None
    retry: RetryPolicy = RetryPolicy()
    speculation: SpeculationConfig = SpeculationConfig()

    def __post_init__(self) -> None:
        if not 0.0 <= self.fault_rate <= 1.0:
            raise ValueError(f"fault_rate must be in [0, 1], got {self.fault_rate}")
        if not 0.0 <= self.straggler_rate <= 1.0:
            raise ValueError(
                f"straggler_rate must be in [0, 1], got {self.straggler_rate}"
            )
        if self.straggler_factor < 1.0:
            raise ValueError(
                f"straggler_factor must be >= 1, got {self.straggler_factor}"
            )
        if self.blacklist_after is not None and self.blacklist_after < 1:
            raise ValueError(
                f"blacklist_after must be >= 1, got {self.blacklist_after}"
            )
        if isinstance(self.slot_slowdowns, Mapping):
            object.__setattr__(
                self, "slot_slowdowns", tuple(sorted(self.slot_slowdowns.items()))
            )
        for slot, factor in self.slot_slowdowns:
            if factor < 1.0:
                raise ValueError(
                    f"slot {slot} slowdown must be >= 1, got {factor}"
                )

    # -- hash-derived decisions ----------------------------------------

    def _unit(self, *key: object) -> float:
        """A uniform [0, 1) draw that is a pure function of ``key``."""
        return _avalanche(stable_hash((self.seed,) + key)) / 2.0**64

    def attempt_fails(self, job: str, phase: str, task_id: int, attempt: int) -> bool:
        """Does attempt number ``attempt`` of this task crash?

        ``attempt`` is the number of *prior failures* of the task, which is
        what makes the failure set monotone in :attr:`fault_rate`.
        """
        if self.fault_rate <= 0.0:
            return False
        return self._unit("fail", job, phase, task_id, attempt) < self.fault_rate

    def crash_fraction(self, job: str, phase: str, task_id: int, attempt: int) -> float:
        """Fraction of the attempt's effective cost burned before the crash."""
        u = self._unit("crash", job, phase, task_id, attempt)
        return MIN_CRASH_FRACTION + (MAX_CRASH_FRACTION - MIN_CRASH_FRACTION) * u

    def slot_slowdown(self, slot: int) -> float:
        """Cost multiplier of ``slot`` (1.0 for a healthy slot)."""
        for index, factor in self.slot_slowdowns:
            if index == slot:
                return factor
        if self.straggler_rate <= 0.0 or self.straggler_factor == 1.0:
            return 1.0
        if self._unit("straggler", slot) < self.straggler_rate:
            return self.straggler_factor
        return 1.0

    @property
    def is_inert(self) -> bool:
        """True when scheduling through this plan cannot differ from a
        fault-free run (no crashes, no slowdowns, no speculation)."""
        return (
            self.fault_rate == 0.0
            and not self.slot_slowdowns
            and (self.straggler_rate == 0.0 or self.straggler_factor == 1.0)
            and not self.speculation.enabled
        )


# ---------------------------------------------------------------------------
# Schedules
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AttemptSpan:
    """One placed task attempt, in global virtual time.

    ``outcome`` is ``"success"`` (the winning attempt), ``"failed"`` (it
    crashed at ``end``, losing the partial work) or ``"killed"`` (a
    speculation loser, terminated at the winner's finish time).
    """

    attempt: int
    slot: int
    start: float
    end: float
    outcome: str
    speculative: bool = False

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class TaskSchedule:
    """Every attempt one task consumed, in chronological start order."""

    task_id: int
    attempts: Tuple[AttemptSpan, ...]

    @property
    def winning(self) -> AttemptSpan:
        """The successful attempt (every finished task has exactly one)."""
        for span in self.attempts:
            if span.outcome == "success":
                return span
        raise ValueError(f"task {self.task_id} has no successful attempt")

    @property
    def num_failed(self) -> int:
        return sum(1 for span in self.attempts if span.outcome == "failed")


class _Slot:
    """Mutable slot state during one phase simulation."""

    __slots__ = ("index", "free_at", "slowdown", "failures", "blacklisted")

    def __init__(self, index: int, free_at: float, slowdown: float) -> None:
        self.index = index
        self.free_at = free_at
        self.slowdown = slowdown
        self.failures = 0
        self.blacklisted = False


class _Attempt:
    """Mutable running-attempt record (becomes an :class:`AttemptSpan`)."""

    __slots__ = ("task_id", "attempt", "slot", "start", "end", "fails", "speculative", "killed")

    def __init__(self, task_id, attempt, slot, start, end, fails, speculative):
        self.task_id = task_id
        self.attempt = attempt
        self.slot = slot
        self.start = start
        self.end = end
        self.fails = fails
        self.speculative = speculative
        self.killed = False

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class FaultStats:
    """What one phase simulation observed (feeds ``fault.*`` counters)."""

    failed_attempts: int = 0
    speculative_launched: int = 0
    speculative_wins: int = 0
    speculative_failed: int = 0
    killed_attempts: int = 0
    blacklisted_slots: int = 0
    retries: int = 0


class FaultScheduler:
    """Places one phase's tasks on slots under a :class:`FaultPlan`.

    A deterministic discrete-event simulation: tasks become *ready* (at
    phase start, or after a failure plus backoff), ready tasks are placed
    on the earliest-free non-blacklisted slot (ties break by task id, then
    slot index — exactly :class:`~repro.mapreduce.engine.SlotPool`'s
    ordering), and attempt completions drive retries, blacklisting and
    speculation.  All decisions replay from the plan; nothing is random at
    simulation time.
    """

    def __init__(
        self,
        plan: FaultPlan,
        num_slots: int,
        ready_time: float,
        *,
        job: str,
        phase: str,
        slot_free_times: Optional[Sequence[float]] = None,
    ) -> None:
        if num_slots <= 0:
            raise ValueError(f"need at least one slot, got {num_slots}")
        if slot_free_times is not None and len(slot_free_times) != num_slots:
            raise ValueError(
                f"slot_free_times has {len(slot_free_times)} entries for "
                f"{num_slots} slots"
            )
        self._plan = plan
        self._job = job
        self._phase = phase
        self._ready_time = ready_time
        # ``slot_free_times`` lets a shared-capacity pool hand this phase
        # slots that are still busy with earlier work (multi-tenant
        # scheduling): tasks stay ready at ``ready_time`` but each slot
        # only accepts attempts once its prior commitment drains.  The
        # default — every slot free at phase start — is the classic
        # single-job cluster and is bit-identical to the historical
        # behaviour.
        self._slots = [
            _Slot(
                index,
                ready_time if slot_free_times is None
                else max(ready_time, slot_free_times[index]),
                plan.slot_slowdown(index),
            )
            for index in range(num_slots)
        ]
        self.stats = FaultStats()

    # -- public API ----------------------------------------------------

    def run(self, costs: Sequence[float]) -> List[TaskSchedule]:
        """Simulate the phase; returns one :class:`TaskSchedule` per task.

        Raises :class:`JobAbortedError` when any task exhausts the retry
        policy's attempt budget.
        """
        n = len(costs)
        self._costs = list(costs)
        self._ready: List[Tuple[float, int]] = [
            (self._ready_time, task_id) for task_id in range(n)
        ]
        heapq.heapify(self._ready)
        self._finishes: List[Tuple[float, int, _Attempt]] = []
        self._seq = 0
        self._live: Dict[int, List[_Attempt]] = {t: [] for t in range(n)}
        self._spans: List[List[AttemptSpan]] = [[] for _ in range(n)]
        self._failed: List[int] = [0] * n
        self._attempt_ids: List[int] = [0] * n
        self._done: List[Optional[_Attempt]] = [None] * n
        self._had_backup: Set[int] = set()
        self._durations: List[float] = []

        while self._ready or self._finishes:
            if not self._ready and self._plan.speculation.enabled:
                self._speculate()
            if self._ready:
                ready_time, task_id = self._ready[0]
                slot = self._best_slot()
                launch_at = max(ready_time, slot.free_at)
                if self._finishes and self._finishes[0][0] <= launch_at:
                    self._process_finish()
                else:
                    heapq.heappop(self._ready)
                    self._commit(task_id, ready_time, slot, speculative=False)
            else:
                self._process_finish()

        return [
            TaskSchedule(
                task_id=t,
                attempts=tuple(
                    sorted(self._spans[t], key=lambda a: (a.start, a.attempt))
                ),
            )
            for t in range(n)
        ]

    @property
    def final_free_times(self) -> List[float]:
        """Per-slot times at which the simulated phase releases each slot.

        Only meaningful after :meth:`run`; a shared-capacity pool uses it
        to return leased slots to the common timeline.
        """
        return [slot.free_at for slot in self._slots]

    # -- internals -----------------------------------------------------

    def _best_slot(self) -> _Slot:
        """The earliest-free non-blacklisted slot (ties by slot index)."""
        return min(
            (s for s in self._slots if not s.blacklisted),
            key=lambda s: (s.free_at, s.index),
        )

    def _commit(
        self, task_id: int, ready_time: float, slot: _Slot, *, speculative: bool
    ) -> None:
        """Place one attempt of ``task_id`` on ``slot``."""
        start = max(ready_time, slot.free_at)
        effective = self._costs[task_id] * slot.slowdown
        if speculative:
            fails = self._plan.attempt_fails(self._job, self._phase, task_id, -1)
            fraction = self._plan.crash_fraction(self._job, self._phase, task_id, -1)
        else:
            ordinal = self._failed[task_id]
            fails = self._plan.attempt_fails(self._job, self._phase, task_id, ordinal)
            fraction = self._plan.crash_fraction(self._job, self._phase, task_id, ordinal)
        duration = effective * fraction if fails else effective
        attempt = _Attempt(
            task_id,
            self._attempt_ids[task_id],
            slot.index,
            start,
            start + duration,
            fails,
            speculative,
        )
        self._attempt_ids[task_id] += 1
        slot.free_at = attempt.end
        self._live[task_id].append(attempt)
        self._durations.append(duration)
        self._seq += 1
        heapq.heappush(self._finishes, (attempt.end, self._seq, attempt))
        if speculative:
            self._had_backup.add(task_id)
            self.stats.speculative_launched += 1

    def _process_finish(self) -> None:
        """Consume the earliest attempt completion."""
        _, _, attempt = heapq.heappop(self._finishes)
        if attempt.killed:
            return  # lazily deleted: the race was lost earlier
        task_id = attempt.task_id
        live = self._live[task_id]
        live.remove(attempt)
        if attempt.fails:
            self._on_failure(attempt, live)
        else:
            self._on_success(attempt, live)

    def _on_failure(self, attempt: _Attempt, live: List[_Attempt]) -> None:
        task_id = attempt.task_id
        self._spans[task_id].append(
            AttemptSpan(
                attempt.attempt,
                attempt.slot,
                attempt.start,
                attempt.end,
                "failed",
                attempt.speculative,
            )
        )
        self.stats.failed_attempts += 1
        if attempt.speculative:
            self.stats.speculative_failed += 1
        self._register_slot_failure(self._slots[attempt.slot])
        self._failed[task_id] += 1
        if live:
            # The surviving attempt (original or backup) carries on; a
            # promoted backup is simply the one attempt left running.
            return
        if self._failed[task_id] >= self._plan.retry.max_attempts:
            raise JobAbortedError(self._phase, task_id, self._failed[task_id])
        delay = self._plan.retry.backoff(self._failed[task_id])
        self.stats.retries += 1
        heapq.heappush(self._ready, (attempt.end + delay, task_id))

    def _on_success(self, attempt: _Attempt, live: List[_Attempt]) -> None:
        task_id = attempt.task_id
        self._done[task_id] = attempt
        self._spans[task_id].append(
            AttemptSpan(
                attempt.attempt,
                attempt.slot,
                attempt.start,
                attempt.end,
                "success",
                attempt.speculative,
            )
        )
        if attempt.speculative:
            self.stats.speculative_wins += 1
        for loser in live:
            # First finisher wins: the loser dies at the winner's finish
            # time and, unless a later attempt was already committed
            # behind it, its slot is reclaimed immediately.
            loser.killed = True
            self._spans[task_id].append(
                AttemptSpan(
                    loser.attempt,
                    loser.slot,
                    loser.start,
                    attempt.end,
                    "killed",
                    loser.speculative,
                )
            )
            slot = self._slots[loser.slot]
            if slot.free_at == loser.end:
                slot.free_at = attempt.end
            self.stats.killed_attempts += 1
        live.clear()

    def _register_slot_failure(self, slot: _Slot) -> None:
        slot.failures += 1
        threshold = self._plan.blacklist_after
        if threshold is None or slot.blacklisted or slot.failures < threshold:
            return
        usable = sum(1 for s in self._slots if not s.blacklisted)
        if usable > 1:  # never blacklist the last slot standing
            slot.blacklisted = True
            self.stats.blacklisted_slots += 1

    def _speculate(self) -> None:
        """Launch backups for running attempts that look like stragglers."""
        if not self._durations:
            return
        ordered = sorted(self._durations)
        median = ordered[(len(ordered) - 1) // 2]
        threshold = self._plan.speculation.threshold * median
        for task_id in sorted(self._live):
            live = self._live[task_id]
            if (
                len(live) != 1
                or task_id in self._had_backup
                or self._done[task_id] is not None
            ):
                continue
            attempt = live[0]
            if attempt.duration <= threshold:
                continue
            slot = self._best_slot()
            # A backup only makes sense on a slot that frees before the
            # suspect attempt would finish (its own slot never qualifies:
            # it is busy until attempt.end).
            if slot.free_at >= attempt.end:
                continue
            self._commit(task_id, slot.free_at, slot, speculative=True)


__all__ = [
    "MIN_CRASH_FRACTION",
    "MAX_CRASH_FRACTION",
    "JobAbortedError",
    "RetryPolicy",
    "SpeculationConfig",
    "FaultPlan",
    "AttemptSpan",
    "TaskSchedule",
    "FaultStats",
    "FaultScheduler",
]
