"""Helpers for consuming incremental job output.

Section III-B: "the resolution results at any instance of time during the
resolution process can be simply obtained by merging all completely written
files up to that time."
"""

from __future__ import annotations

from typing import Any, Iterable, List

from .types import JobResult, OutputFile


def results_available_at(job: JobResult, time: float) -> List[Any]:
    """Merge all output files completely written by ``time``.

    This is the consumer-side view of progressive output: a file's records
    become visible only once the file is closed.
    """
    merged: List[Any] = []
    for f in sorted(job.output_files, key=lambda f: (f.close_time, f.task_id, f.index)):
        if f.close_time <= time:
            merged.extend(f.records)
    return merged


def file_timeline(job: JobResult) -> List[OutputFile]:
    """All output files ordered by the time they became readable."""
    return sorted(job.output_files, key=lambda f: (f.close_time, f.task_id, f.index))


__all__ = ["results_available_at", "file_timeline"]
