"""A deterministic single-process MapReduce (Hadoop 1.x) simulator.

Provides the execution substrate the paper runs on: jobs with map /
partition / shuffle-sort / reduce phases, static map and reduce slots per
machine, per-task virtual clocks charged through an explicit cost model,
timestamped event streams, and incremental (every-α-cost-units) reduce
output.
"""

from .clock import CostModel, VirtualClock
from .counters import Counters
from .engine import Cluster, SlotPool
from .executors import (
    BACKENDS,
    DEFAULT_SERIAL_FLOOR,
    Executor,
    ParallelExecutor,
    SerialExecutor,
    make_executor,
    register_task_stat_source,
)
from .faults import (
    FaultPlan,
    FaultScheduler,
    JobAbortedError,
    RetryPolicy,
    SpeculationConfig,
    TaskSchedule,
)
from .io import file_timeline, results_available_at
from .job import (
    Combiner,
    MapReduceJob,
    Mapper,
    Partitioner,
    Reducer,
    TaskContext,
    split_input,
    stable_hash,
)
from .types import Event, JobResult, OutputFile, TaskResult

__all__ = [
    "CostModel",
    "VirtualClock",
    "Counters",
    "Cluster",
    "SlotPool",
    "Executor",
    "SerialExecutor",
    "ParallelExecutor",
    "make_executor",
    "register_task_stat_source",
    "DEFAULT_SERIAL_FLOOR",
    "BACKENDS",
    "FaultPlan",
    "FaultScheduler",
    "JobAbortedError",
    "RetryPolicy",
    "SpeculationConfig",
    "TaskSchedule",
    "MapReduceJob",
    "Combiner",
    "Mapper",
    "Reducer",
    "Partitioner",
    "TaskContext",
    "split_input",
    "stable_hash",
    "Event",
    "JobResult",
    "OutputFile",
    "TaskResult",
    "results_available_at",
    "file_timeline",
]
