"""Jaro and Jaro-Winkler string similarity.

Not used by the paper's headline match function (which is edit-distance
based) but provided as an alternative comparator for short name-like
attributes, where Jaro-Winkler is the standard choice in the ER literature.
"""

from __future__ import annotations


def jaro(a: str, b: str) -> float:
    """Jaro similarity in [0, 1]."""
    if a == b:
        return 1.0
    la, lb = len(a), len(b)
    if la == 0 or lb == 0:
        return 0.0
    window = max(la, lb) // 2 - 1
    if window < 0:
        window = 0
    match_a = [False] * la
    match_b = [False] * lb

    matches = 0
    for i, ch in enumerate(a):
        lo = max(0, i - window)
        hi = min(lb, i + window + 1)
        for j in range(lo, hi):
            if not match_b[j] and b[j] == ch:
                match_a[i] = True
                match_b[j] = True
                matches += 1
                break
    if matches == 0:
        return 0.0

    transpositions = 0
    j = 0
    for i in range(la):
        if match_a[i]:
            while not match_b[j]:
                j += 1
            if a[i] != b[j]:
                transpositions += 1
            j += 1
    transpositions //= 2

    return (
        matches / la + matches / lb + (matches - transpositions) / matches
    ) / 3.0


def jaro_winkler(a: str, b: str, *, prefix_scale: float = 0.1, max_prefix: int = 4) -> float:
    """Jaro-Winkler similarity: Jaro boosted by the common prefix length."""
    if not 0.0 <= prefix_scale <= 0.25:
        raise ValueError(f"prefix_scale must be in [0, 0.25], got {prefix_scale}")
    base = jaro(a, b)
    prefix = 0
    for ca, cb in zip(a, b):
        if ca != cb or prefix >= max_prefix:
            break
        prefix += 1
    return base + prefix * prefix_scale * (1.0 - base)


__all__ = ["jaro", "jaro_winkler"]
