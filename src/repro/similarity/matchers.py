"""The resolve/match function.

Section VI-A2: "we applied similarity functions on multiple individual
attributes and then used the weighted summation of the attribute
similarities to decide whether the two entities co-refer or not."
:class:`WeightedMatcher` implements exactly that, with per-attribute
comparator choice (edit distance, exact, Jaro-Winkler), optional value
truncation (the paper compares only the first ≤ 350 abstract characters),
and a cost hook so the simulator can charge longer comparisons more.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..data.entity import Entity
from ..mapreduce.counters import Counters
from ..mapreduce.executors import register_job_reset_hook, register_task_stat_source
from .edit_distance import edit_similarity, levenshtein
from .jaro import jaro_winkler
from .tokens import qgram_jaccard, token_jaccard

#: Attribute length (characters) that costs exactly one comparison unit.
REFERENCE_LENGTH = 40.0

#: Lower clamp on the per-pair cost factor: even trivial comparisons incur
#: dispatch/serialization overhead.
MIN_COST_FACTOR = 0.2

#: Relative wall-clock cost rank per comparator, used to order rule
#: evaluation cheapest-first when a bounded match can short-circuit.
_COMPARATOR_RANK = {
    "exact": 0,
    "token_jaccard": 1,
    "qgram": 1,
    "jaro_winkler": 2,
    "edit": 3,  # quadratic in string length
}

_COMPARATOR_FUNCTIONS = {
    "edit": edit_similarity,
    "jaro_winkler": jaro_winkler,
    "token_jaccard": token_jaccard,
    "qgram": qgram_jaccard,
}


#: Comparison memo: ``(comparator, v1, v2) -> similarity``.  A plain dict
#: (not ``lru_cache``) so the threshold-propagating edit path can consult
#: and populate the same memo as the exact path, and so hit/miss counts
#: can be snapshotted cheaply by the per-task stat hook.
_MEMO: Dict[Tuple[str, str, str], float] = {}

#: Entry cap; the memo is dropped wholesale when it fills (values recur so
#: heavily in blocked ER data that eviction policy barely matters).
_MEMO_MAX = 1 << 20

_MEMO_STATS = {"hits": 0, "misses": 0}

#: Sentinel returned by :func:`_memo_edit_at_least` when the similarity is
#: provably below the requested floor (the exact value was never computed).
_BELOW_FLOOR = -1.0


def _memo_compare(comparator: str, v1: str, v2: str) -> float:
    """Memoized attribute-value comparison.

    Blocked data repeats attribute values constantly (every member of a
    block shares its blocking key's attribute, SN windows slide one record
    at a time), so ``(comparator, v1, v2)`` recurs across pairs, blocks and
    runs.  The memo only skips *wall-clock* work: virtual cost is charged
    from string lengths by :meth:`WeightedMatcher.comparison_cost_factor`,
    which never consults the cache, so cached and uncached paths charge
    identically.  Process-backend workers each hold their own copy (forked
    warm, then diverging), which likewise cannot affect virtual time.
    """
    key = (comparator, v1, v2)
    cached = _MEMO.get(key)
    if cached is not None:
        _MEMO_STATS["hits"] += 1
        return cached
    _MEMO_STATS["misses"] += 1
    value = _COMPARATOR_FUNCTIONS[comparator](v1, v2)
    if len(_MEMO) >= _MEMO_MAX:
        _MEMO.clear()
    _MEMO[key] = value
    return value


def _memo_edit_at_least(v1: str, v2: str, floor: float) -> float:
    """Edit similarity when it can still matter, else :data:`_BELOW_FLOOR`.

    ``floor`` is the minimum similarity that could still influence the
    match decision (see :meth:`WeightedMatcher._rule_floor`).  The floor is
    converted into an edit-distance bound for the banded kernel:
    ``allowed = int((1 - floor) * longest)`` truncates, so any distance
    ``d > allowed`` satisfies ``d >= allowed + 1 > (1 - floor) * longest``
    and therefore ``1 - d/longest < floor`` *strictly* — the sentinel is
    only ever returned for similarities genuinely below the floor.

    Exact results are cached under the same key the unbounded path uses
    (``1 - d/longest`` is the identical float expression
    :func:`edit_similarity` evaluates); below-floor probes are *not*
    cached, because the sentinel is relative to this call's floor.
    """
    key = ("edit", v1, v2)
    cached = _MEMO.get(key)
    if cached is not None:
        _MEMO_STATS["hits"] += 1
        return cached
    _MEMO_STATS["misses"] += 1
    longest = max(len(v1), len(v2))
    allowed = int((1.0 - floor) * longest)
    distance = levenshtein(v1, v2, max_distance=allowed)
    if distance > allowed:
        return _BELOW_FLOOR
    value = 1.0 - distance / longest
    if len(_MEMO) >= _MEMO_MAX:
        _MEMO.clear()
    _MEMO[key] = value
    return value


def similarity_cache_counters() -> Counters:
    """Cache-hit statistics as Hadoop-style counters (this process only),
    under the ``matcher.*`` namespace."""
    counters = Counters()
    counters.increment("matcher", "cache_hits", _MEMO_STATS["hits"])
    counters.increment("matcher", "cache_misses", _MEMO_STATS["misses"])
    counters.increment("matcher", "cache_entries", len(_MEMO))
    return counters


def clear_similarity_cache() -> None:
    """Drop the process-wide comparison memo (benchmark hygiene)."""
    _MEMO.clear()
    _MEMO_STATS["hits"] = 0
    _MEMO_STATS["misses"] = 0


def _matcher_stat_source() -> Dict[str, int]:
    """Monotone cache statistics for per-task payload deltas.

    Registered with the executor layer so process-backend workers ship the
    hits/misses their task generated back to the driver, keeping serial
    and parallel ``matcher.*`` metrics comparable.  ``cache_entries`` is
    deliberately excluded: it is a level, not a counter, and deltas of it
    would go negative on memo resets.
    """
    return {
        "cache_hits": _MEMO_STATS["hits"],
        "cache_misses": _MEMO_STATS["misses"],
    }


register_task_stat_source("matcher", _matcher_stat_source)

# A fresh memo per job: without this, the process-wide memo leaks across
# back-to-back ExperimentRuns in one process and the per-run `matcher.*`
# counters mostly describe earlier runs' warm cache.  Purely wall-clock —
# virtual costs never consult the memo.
register_job_reset_hook(clear_similarity_cache)


@dataclass(frozen=True)
class AttributeRule:
    """How one attribute contributes to the match decision.

    Attributes:
        attribute: attribute name.
        weight: relative weight of this attribute's similarity.
        comparator: ``"edit"``, ``"exact"``, ``"jaro_winkler"``,
            ``"token_jaccard"`` (word sets, order-insensitive) or
            ``"qgram"`` (2-gram sets, near-linear in length).
        max_chars: compare only the first ``max_chars`` characters
            (``None`` = whole value).
    """

    attribute: str
    weight: float
    comparator: str = "edit"
    max_chars: Optional[int] = None

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError(f"weight must be positive, got {self.weight}")
        valid = ("edit", "exact", "jaro_winkler", "token_jaccard", "qgram")
        if self.comparator not in valid:
            raise ValueError(f"unknown comparator {self.comparator!r}")

    def values(self, e1: Entity, e2: Entity) -> Tuple[str, str]:
        """The (possibly truncated) attribute values to compare."""
        v1, v2 = e1.get(self.attribute), e2.get(self.attribute)
        if self.max_chars is not None:
            v1, v2 = v1[: self.max_chars], v2[: self.max_chars]
        return v1, v2

    def similarity(self, e1: Entity, e2: Entity) -> Optional[float]:
        """Similarity of this attribute in [0, 1].

        Returns ``None`` when both values are missing, which excludes the
        attribute from the weighted sum (re-normalized by the matcher);
        one-sided missing values score 0.
        """
        v1, v2 = self.values(e1, e2)
        if not v1 and not v2:
            return None
        if not v1 or not v2:
            return 0.0
        if self.comparator == "exact":
            return 1.0 if v1 == v2 else 0.0
        return _memo_compare(self.comparator, v1, v2)


class WeightedMatcher:
    """Weighted-sum attribute matcher with a decision threshold.

    Args:
        rules: per-attribute contribution rules.
        threshold: declare a duplicate when the weighted similarity is at
            least this value.
        cache: memoize pair similarities by entity-id pair.  Only valid
            while the matcher is used against a single dataset (ids key the
            cache); benchmark harnesses use it to share comparisons across
            the many runs they perform on one dataset.
    """

    def __init__(
        self,
        rules: Sequence[AttributeRule],
        threshold: float,
        *,
        cache: bool = False,
    ) -> None:
        if not rules:
            raise ValueError("a matcher needs at least one attribute rule")
        if not 0.0 < threshold <= 1.0:
            raise ValueError(f"threshold must be in (0, 1], got {threshold}")
        self.rules: List[AttributeRule] = list(rules)
        self.threshold = threshold
        self._cache: Optional[dict] = {} if cache else None
        # Cheapest comparators first (stable on the original order), so a
        # bounded match can rule a pair out before paying for quadratic
        # edit distances on long attributes.
        self._eval_order: List[int] = sorted(
            range(len(self.rules)),
            key=lambda i: (_COMPARATOR_RANK[self.rules[i].comparator], i),
        )
        self._total_weight = sum(rule.weight for rule in self.rules)

    def clear_cache(self) -> None:
        """Drop all memoized similarities (switching datasets)."""
        if self._cache is not None:
            self._cache.clear()

    def similarity(self, e1: Entity, e2: Entity) -> float:
        """Weighted similarity in [0, 1]; attributes missing on both sides
        are excluded and the remaining weights re-normalized."""
        if self._cache is not None:
            key = (e1.id, e2.id) if e1.id < e2.id else (e2.id, e1.id)
            hit = self._cache.get(key)
            if hit is not None:
                return hit
            value = self._similarity(e1, e2)
            self._cache[key] = value
            return value
        return self._similarity(e1, e2)

    def _similarity(self, e1: Entity, e2: Entity) -> float:
        total_weight = 0.0
        total = 0.0
        for rule in self.rules:
            sim = rule.similarity(e1, e2)
            if sim is None:
                continue
            total += rule.weight * sim
            total_weight += rule.weight
        if total_weight == 0.0:
            return 0.0
        return total / total_weight

    def is_match(self, e1: Entity, e2: Entity) -> bool:
        """The resolve function: do ``e1`` and ``e2`` co-refer?"""
        if self._cache is not None:
            # The pair cache wants the full score anyway; no point bounding.
            return self.similarity(e1, e2) >= self.threshold
        return self._bounded_match(e1, e2)

    def _bounded_match(self, e1: Entity, e2: Entity) -> bool:
        """Decide ``is_match`` evaluating cheap comparators first.

        After each rule, an upper bound on the achievable weighted
        similarity is checked: every unevaluated rule is assumed to score a
        perfect 1.0 (which also dominates the missing-on-both-sides case,
        where the weight drops from both numerator and denominator).  If
        even that bound falls below the threshold the pair cannot match and
        the remaining — typically quadratic — comparators are skipped.  When
        no cutoff fires, the final sum is re-accumulated in the *original*
        rule order so the decision is bit-for-bit the one
        :meth:`similarity` would make.

        Edit-distance rules additionally propagate the running bound *into*
        the kernel: :meth:`_rule_floor` derives the minimum similarity this
        rule must reach for the pair to stay alive, and the banded DP is
        called with the matching distance bound so it can abandon rows the
        moment the pair is dead — without changing any decision (a
        below-floor result implies the post-rule cutoff would have fired).
        """
        sims: List[Optional[float]] = [None] * len(self.rules)
        total = 0.0
        total_weight = 0.0
        remaining = self._total_weight
        for index in self._eval_order:
            rule = self.rules[index]
            remaining_after = remaining - rule.weight
            if rule.comparator == "edit":
                v1, v2 = rule.values(e1, e2)
                if not v1 and not v2:
                    sim: Optional[float] = None
                elif not v1 or not v2:
                    sim = 0.0
                else:
                    floor = self._rule_floor(
                        rule.weight, total, total_weight, remaining_after
                    )
                    if floor > 1.0:
                        # Even a perfect score on this rule leaves the pair
                        # below the cutoff bound: no kernel call needed.
                        return False
                    if floor > 0.0:
                        sim = _memo_edit_at_least(v1, v2, floor)
                        if sim == _BELOW_FLOOR:
                            return False
                    else:
                        sim = _memo_compare("edit", v1, v2)
            else:
                sim = rule.similarity(e1, e2)
            sims[index] = sim
            remaining = remaining_after
            if sim is not None:
                total += rule.weight * sim
                total_weight += rule.weight
            bound_weight = total_weight + remaining
            if bound_weight == 0.0:
                return False  # every evaluated rule missing on both sides
            # Conservative margin: the bound is accumulated in evaluation
            # order, so give float reordering noise no chance to cut a pair
            # that the exact original-order sum would accept.
            if remaining > 0.0 and (total + remaining) / bound_weight < self.threshold - 1e-9:
                return False
        if total_weight == 0.0:
            return False
        exact_total = 0.0
        exact_weight = 0.0
        for rule, sim in zip(self.rules, sims):
            if sim is None:
                continue
            exact_total += rule.weight * sim
            exact_weight += rule.weight
        return exact_total / exact_weight >= self.threshold

    def _rule_floor(
        self,
        weight: float,
        total: float,
        total_weight: float,
        remaining_after: float,
    ) -> float:
        """Minimum similarity this rule must score to keep the pair alive.

        Derived by solving the post-rule cutoff inequality for this rule's
        similarity ``s``: the cutoff fires when
        ``(total + weight*s + remaining_after) / bound_weight <
        threshold - 1e-9`` (every later rule assumed perfect).  Any ``s``
        below the returned floor therefore guarantees the existing cutoff —
        or, for the final rule, the exact threshold check — rejects the
        pair.  An extra ``1e-7`` is subtracted so float noise in computing
        the floor itself can never disqualify a pair the exact-order sum
        would accept: propagation may only skip work, never flip decisions.
        """
        bound_weight = total_weight + weight + remaining_after
        if bound_weight <= 0.0:
            return 0.0
        floor = (
            (self.threshold - 1e-9) * bound_weight - total - remaining_after
        ) / weight
        return floor - 1e-7

    def comparison_cost_factor(self, e1: Entity, e2: Entity) -> float:
        """Relative cost of resolving this pair (1.0 = reference length).

        Edit distance is quadratic in string length, so the factor scales
        with the mean compared length relative to :data:`REFERENCE_LENGTH`;
        exact-match rules contribute a negligible constant.
        """
        chars = 0.0
        quadratic_rules = 0
        for rule in self.rules:
            if rule.comparator in ("exact", "token_jaccard", "qgram"):
                continue
            v1, v2 = rule.values(e1, e2)
            chars += (len(v1) + len(v2)) / 2.0
            quadratic_rules += 1
        if quadratic_rules == 0:
            return MIN_COST_FACTOR
        factor = chars / (quadratic_rules * REFERENCE_LENGTH)
        return max(MIN_COST_FACTOR, factor)


def citeseer_matcher(threshold: float = 0.54, *, cache: bool = False) -> WeightedMatcher:
    """The paper's CiteSeerX match function: edit distance on title,
    abstract (first ≤ 350 chars) and venue."""
    return WeightedMatcher(
        rules=[
            AttributeRule("title", weight=0.5, comparator="edit"),
            AttributeRule("abstract", weight=0.3, comparator="edit", max_chars=350),
            AttributeRule("venue", weight=0.2, comparator="edit"),
        ],
        threshold=threshold,
        cache=cache,
    )


def books_matcher(threshold: float = 0.46, *, cache: bool = False) -> WeightedMatcher:
    """The paper's OL-Books match function: eight attributes compared with
    edit distance or exact matching."""
    return WeightedMatcher(
        rules=[
            AttributeRule("title", weight=0.34, comparator="edit"),
            AttributeRule("authors", weight=0.22, comparator="edit"),
            AttributeRule("publisher", weight=0.12, comparator="edit"),
            AttributeRule("year", weight=0.08, comparator="exact"),
            AttributeRule("isbn", weight=0.10, comparator="exact"),
            AttributeRule("pages", weight=0.05, comparator="exact"),
            AttributeRule("language", weight=0.05, comparator="exact"),
            AttributeRule("format", weight=0.04, comparator="exact"),
        ],
        threshold=threshold,
        cache=cache,
    )


def people_matcher(threshold: float = 0.62, *, cache: bool = False) -> WeightedMatcher:
    """Match function for census-style person records: edit distance on
    the name/address fields, exact matching on the categorical ones."""
    return WeightedMatcher(
        rules=[
            AttributeRule("name", weight=0.20, comparator="edit"),
            AttributeRule("surname", weight=0.25, comparator="edit"),
            AttributeRule("street", weight=0.18, comparator="edit"),
            AttributeRule("city", weight=0.10, comparator="edit"),
            AttributeRule("state", weight=0.05, comparator="exact"),
            AttributeRule("zip", weight=0.08, comparator="exact"),
            AttributeRule("birth_year", weight=0.08, comparator="exact"),
            AttributeRule("phone", weight=0.06, comparator="exact"),
        ],
        threshold=threshold,
        cache=cache,
    )


def linkage_matcher(threshold: float = 0.55, *, cache: bool = False) -> WeightedMatcher:
    """Match function for clean-clean linkage: only the attributes *shared*
    by the two source schemas are comparable (title / authors / year), so
    the weights concentrate there — edit distance on the free-text fields,
    exact matching on the year."""
    return WeightedMatcher(
        rules=[
            AttributeRule("title", weight=0.55, comparator="edit"),
            AttributeRule("authors", weight=0.30, comparator="edit"),
            AttributeRule("year", weight=0.15, comparator="exact"),
        ],
        threshold=threshold,
        cache=cache,
    )


__all__ = [
    "AttributeRule",
    "WeightedMatcher",
    "similarity_cache_counters",
    "clear_similarity_cache",
    "citeseer_matcher",
    "books_matcher",
    "people_matcher",
    "linkage_matcher",
    "REFERENCE_LENGTH",
    "MIN_COST_FACTOR",
]
