"""Similarity kernels and the weighted-sum resolve/match function."""

from .batch import (
    BatchMatcher,
    batch_cost_factors,
    batch_is_match,
    batch_kernel_counters,
    batch_similarity,
    reset_batch_kernel_counters,
)
from .edit_distance import (
    dp_cell_counters,
    edit_similarity,
    edit_similarity_at_least,
    levenshtein,
    reset_dp_cell_counters,
)
from .jaro import jaro, jaro_winkler
from .matchers import (
    AttributeRule,
    WeightedMatcher,
    books_matcher,
    citeseer_matcher,
    clear_similarity_cache,
    linkage_matcher,
    people_matcher,
    similarity_cache_counters,
)
from .tokens import jaccard, qgram_jaccard, qgrams, token_jaccard, word_tokens

__all__ = [
    "levenshtein",
    "edit_similarity",
    "edit_similarity_at_least",
    "jaro",
    "jaro_winkler",
    "AttributeRule",
    "WeightedMatcher",
    "citeseer_matcher",
    "books_matcher",
    "people_matcher",
    "linkage_matcher",
    "word_tokens",
    "qgrams",
    "jaccard",
    "token_jaccard",
    "qgram_jaccard",
    "similarity_cache_counters",
    "clear_similarity_cache",
    "dp_cell_counters",
    "reset_dp_cell_counters",
    "BatchMatcher",
    "batch_similarity",
    "batch_is_match",
    "batch_cost_factors",
    "batch_kernel_counters",
    "reset_batch_kernel_counters",
]
