"""Batched similarity kernels: decide many pairs per Python call.

:class:`~repro.similarity.matchers.WeightedMatcher` decides one pair per
call, and every call pays the same fixed tolls — attribute lookups and
truncation slices (``AttributeRule.values``), method dispatch through
``is_match -> _bounded_match -> rule.similarity -> _memo_compare``, and
tuple keys into the process-wide memo.  Block resolution asks the same
question for *hundreds* of pairs over the *same few dozen* entities (an
SN window of width ``w`` visits each entity in up to ``2(w-1)`` pairs), so
almost all of that per-call work is redundant.

:class:`BatchMatcher` amortizes it:

* **per-entity value tables** — each entity's (truncated) attribute values,
  their lengths, and integer codes for exact-comparator values are computed
  once per entity and reused by every pair that touches it;
* **rule-major evaluation** — the outer loop runs over rules (in the same
  cheapest-first order the scalar path uses), the inner loop over the pairs
  still alive, with the rule's weight/comparator hoisted into locals;
* **batched short-circuits** — the scalar path's upper-bound cutoff and the
  threshold-propagating edit-distance floor run per pair inside the batch,
  so a dead pair drops out of every later (more expensive) rule;
* **optional numpy fast path** — exact-comparator columns are evaluated as
  vectorized integer-code comparisons when numpy is importable and the
  batch is large enough; a pure-python loop covers every other case.

Decisions are **bit-identical** to the scalar matcher: the same float
expressions accumulate in the same order with the same ``1e-9`` / ``1e-7``
guard margins (floors are computed by :meth:`WeightedMatcher._rule_floor`
itself), the final weighted sum is re-accumulated in original rule order,
and edit kernels are reached through the same memo functions.  The property
suite in ``tests/test_batch_kernels.py`` pins the equivalence on random
matchers, and the differential harness pins it end-to-end.

What batching may legitimately change: wall-clock time and the memo
hit/miss counters (a batch deduplicates identical value pairs before
consulting the memo), both of which live outside virtual time.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..data.entity import Entity
from .matchers import (
    MIN_COST_FACTOR,
    REFERENCE_LENGTH,
    AttributeRule,
    WeightedMatcher,
    _BELOW_FLOOR,
    _memo_compare,
    _memo_edit_at_least,
)

try:  # pragma: no cover - exercised via the fallback flag either way
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is optional by design
    _np = None

#: Batches below this size skip the numpy path: array construction costs
#: more than the handful of string comparisons it replaces.
NUMPY_MIN_PAIRS = 16

#: Comparators whose cost the scalar cost model treats as negligible
#: (mirrors the tuple in ``WeightedMatcher.comparison_cost_factor``).
_CHEAP_COMPARATORS = ("exact", "token_jaccard", "qgram")

_STATS = {"batches": 0, "pairs": 0, "numpy_batches": 0}


def batch_kernel_counters() -> Dict[str, int]:
    """Process-wide batch-kernel invocation counters (wall-clock facts)."""
    return dict(_STATS)


def reset_batch_kernel_counters() -> None:
    for name in _STATS:
        _STATS[name] = 0


PairSeq = Sequence[Tuple[Entity, Entity]]


class BatchMatcher:
    """Batched, bit-identical evaluation of one matcher over many pairs.

    Build one per block (or longer — the per-entity tables are keyed by
    entity id, so reuse across batches of the same dataset is safe) and
    call :meth:`decisions` / :meth:`cost_factors` with lists of pairs.

    Args:
        matcher: the scalar matcher whose decisions are reproduced.
        use_numpy: enable the vectorized exact-comparator path (ignored
            when numpy is not importable).
    """

    def __init__(self, matcher: WeightedMatcher, *, use_numpy: bool = True) -> None:
        self.matcher = matcher
        rules = matcher.rules
        self._rules: List[AttributeRule] = rules
        self._eval_order = matcher._eval_order
        self._threshold = matcher.threshold
        self._total_weight = matcher._total_weight
        #: ``threshold - 1e-9`` exactly as the scalar cutoff computes it.
        self._cutoff = matcher.threshold - 1e-9
        self._exact_indices = tuple(
            i for i, rule in enumerate(rules) if rule.comparator == "exact"
        )
        self._quad_indices = tuple(
            i for i, rule in enumerate(rules)
            if rule.comparator not in _CHEAP_COMPARATORS
        )
        self._cost_denominator = len(self._quad_indices) * REFERENCE_LENGTH
        self._use_numpy = use_numpy and _np is not None
        #: entity id -> (values, lengths, exact-value codes), one row each.
        self._rows: Dict[int, Tuple[tuple, tuple, tuple]] = {}
        #: exact-comparator value -> small integer code ("" is always 0, so
        #: the vectorized path can test missing values without strings).
        self._value_codes: Dict[str, int] = {"": 0}

    # -- per-entity tables ---------------------------------------------

    def _row(self, entity: Entity) -> Tuple[tuple, tuple, tuple]:
        row = self._rows.get(entity.id)
        if row is None:
            values = []
            for rule in self._rules:
                value = entity.get(rule.attribute)
                if rule.max_chars is not None:
                    value = value[: rule.max_chars]
                values.append(value)
            codes = [0] * len(values)
            value_codes = self._value_codes
            for index in self._exact_indices:
                value = values[index]
                code = value_codes.get(value)
                if code is None:
                    code = len(value_codes)
                    value_codes[value] = code
                codes[index] = code
            row = (tuple(values), tuple([len(v) for v in values]), tuple(codes))
            self._rows[entity.id] = row
        return row

    def _row_columns(self, pairs: PairSeq):
        """Left/right row lists for a batch, hitting the cache inline.

        The dict probe runs in the comprehension (no ``_row`` frame) for
        entities already tabled — in sorted blocks that is nearly all of
        them after the first batch.
        """
        rows = self._rows
        rows1 = [rows.get(e1.id) or self._row(e1) for e1, _ in pairs]
        rows2 = [rows.get(e2.id) or self._row(e2) for _, e2 in pairs]
        return rows1, rows2

    # -- decisions ------------------------------------------------------

    def decisions(self, pairs: PairSeq) -> List[bool]:
        """``[matcher.is_match(e1, e2) for e1, e2 in pairs]``, batched."""
        if not pairs:
            return []
        _STATS["batches"] += 1
        _STATS["pairs"] += len(pairs)
        if self.matcher._cache is not None:
            return self._cached_decisions(pairs)
        return self._bounded_decisions(pairs)

    def _exact_columns(self, rows1, rows2):
        """Vectorized exact-rule columns: index -> (sims, missing) lists.

        Integer codes compare equal iff the strings do, and code 0 is the
        empty string, so one array comparison yields the whole column.
        ``tolist()`` converts back to the exact Python floats/bools the
        scalar path produces (0.0 / 1.0 literals).
        """
        columns = {}
        for index in self._exact_indices:
            # List comprehensions, not generators: one frame per column
            # instead of one generator resumption per element.
            c1 = _np.array([row[2][index] for row in rows1], dtype=_np.int64)
            c2 = _np.array([row[2][index] for row in rows2], dtype=_np.int64)
            sims = (c1 == c2).astype(_np.float64).tolist()
            missing = ((c1 == 0) & (c2 == 0)).tolist()
            columns[index] = (sims, missing)
        return columns

    def _bounded_decisions(self, pairs: PairSeq) -> List[bool]:
        """Mirror of ``WeightedMatcher._bounded_match`` over a batch.

        Rule-major: for each rule in cheapest-first order, evaluate every
        pair still alive, updating the per-pair running bound exactly as
        the scalar loop does.  A pair leaves ``alive`` the moment any
        scalar early-return would have fired for it.
        """
        n = len(pairs)
        rules = self._rules
        num_rules = len(rules)
        matcher = self.matcher
        cutoff = self._cutoff
        rows1, rows2 = self._row_columns(pairs)
        exact_columns = None
        if self._use_numpy and n >= NUMPY_MIN_PAIRS and self._exact_indices:
            _STATS["numpy_batches"] += 1
            exact_columns = self._exact_columns(rows1, rows2)

        sims: List[List[Optional[float]]] = [[None] * num_rules for _ in range(n)]
        totals = [0.0] * n
        weights = [0.0] * n
        remainings = [self._total_weight] * n
        alive = list(range(n))
        for index in self._eval_order:
            if not alive:
                break
            rule = rules[index]
            weight = rule.weight
            comparator = rule.comparator
            is_edit = comparator == "edit"
            is_exact = comparator == "exact"
            column = exact_columns.get(index) if exact_columns is not None else None
            # Within one rule, identical value pairs recur constantly in
            # sorted blocks; resolve them once per batch instead of once
            # per pair (same value either way — only memo traffic differs).
            # Floors dedup too: every pair still alive at this rule has
            # accumulated over the same earlier rules, so the floor is a
            # pure function of the (few distinct) running totals.
            local: Dict[tuple, float] = {}
            floors: Dict[Tuple[float, float], float] = {}
            next_alive = []
            for p in alive:
                v1 = rows1[p][0][index]
                v2 = rows2[p][0][index]
                remaining_after = remainings[p] - weight
                if column is not None:
                    sim: Optional[float] = None if column[1][p] else column[0][p]
                elif not v1 and not v2:
                    sim = None
                elif not v1 or not v2:
                    sim = 0.0
                elif is_exact:
                    sim = 1.0 if v1 == v2 else 0.0
                elif is_edit:
                    fkey = (totals[p], weights[p])
                    floor = floors.get(fkey)
                    if floor is None:
                        floor = matcher._rule_floor(
                            weight, totals[p], weights[p], remaining_after
                        )
                        floors[fkey] = floor
                    if floor > 1.0:
                        continue  # scalar: return False
                    if floor > 0.0:
                        ekey = (v1, v2, floor)
                        sim = local.get(ekey)
                        if sim is None:
                            sim = _memo_edit_at_least(v1, v2, floor)
                            local[ekey] = sim
                        if sim == _BELOW_FLOOR:
                            continue  # scalar: return False
                    else:
                        sim = local.get((v1, v2))
                        if sim is None:
                            sim = _memo_compare("edit", v1, v2)
                            local[(v1, v2)] = sim
                else:
                    sim = local.get((v1, v2))
                    if sim is None:
                        sim = _memo_compare(comparator, v1, v2)
                        local[(v1, v2)] = sim
                sims[p][index] = sim
                remainings[p] = remaining_after
                if sim is not None:
                    totals[p] += weight * sim
                    weights[p] += weight
                bound_weight = weights[p] + remaining_after
                if bound_weight == 0.0:
                    continue  # scalar: return False (all rules missing)
                if (
                    remaining_after > 0.0
                    and (totals[p] + remaining_after) / bound_weight < cutoff
                ):
                    continue  # scalar: return False (upper bound too low)
                next_alive.append(p)
            alive = next_alive

        out = [False] * n
        threshold = self._threshold
        for p in alive:
            if weights[p] == 0.0:
                continue
            # Re-accumulate in original rule order, like the scalar path.
            exact_total = 0.0
            exact_weight = 0.0
            pair_sims = sims[p]
            for rule, sim in zip(rules, pair_sims):
                if sim is None:
                    continue
                exact_total += rule.weight * sim
                exact_weight += rule.weight
            out[p] = exact_total / exact_weight >= threshold
        return out

    def _cached_decisions(self, pairs: PairSeq) -> List[bool]:
        """The pair-cached matcher path: full similarity, cached by id pair."""
        cache = self.matcher._cache
        threshold = self._threshold
        out = [False] * len(pairs)
        misses: List[Tuple[int, Tuple[int, int]]] = []
        for i, (e1, e2) in enumerate(pairs):
            key = (e1.id, e2.id) if e1.id < e2.id else (e2.id, e1.id)
            hit = cache.get(key)
            if hit is not None:
                out[i] = hit >= threshold
            else:
                misses.append((i, key))
        if misses:
            values = self.similarities([pairs[i] for i, _ in misses])
            for (i, key), value in zip(misses, values):
                cache[key] = value
                out[i] = value >= threshold
        return out

    # -- similarities / cost factors -------------------------------------

    def similarities(self, pairs: PairSeq) -> List[float]:
        """``[matcher._similarity(e1, e2) for e1, e2 in pairs]``, batched.

        Rule-major but accumulated per pair in original rule order, so the
        weighted sums are the identical float sequences.
        """
        if not pairs:
            return []
        n = len(pairs)
        rows1, rows2 = self._row_columns(pairs)
        exact_columns = None
        if self._use_numpy and n >= NUMPY_MIN_PAIRS and self._exact_indices:
            _STATS["numpy_batches"] += 1
            exact_columns = self._exact_columns(rows1, rows2)
        totals = [0.0] * n
        weights = [0.0] * n
        for index, rule in enumerate(self._rules):
            weight = rule.weight
            comparator = rule.comparator
            is_exact = comparator == "exact"
            column = exact_columns.get(index) if exact_columns is not None else None
            local: Dict[Tuple[str, str], float] = {}
            for p in range(n):
                v1 = rows1[p][0][index]
                v2 = rows2[p][0][index]
                if column is not None:
                    if column[1][p]:
                        continue
                    sim = column[0][p]
                elif not v1 and not v2:
                    continue
                elif not v1 or not v2:
                    sim = 0.0
                elif is_exact:
                    sim = 1.0 if v1 == v2 else 0.0
                else:
                    sim = local.get((v1, v2))
                    if sim is None:
                        sim = _memo_compare(comparator, v1, v2)
                        local[(v1, v2)] = sim
                totals[p] += weight * sim
                weights[p] += weight
        return [
            0.0 if weights[p] == 0.0 else totals[p] / weights[p] for p in range(n)
        ]

    def cost_factors(self, pairs: PairSeq) -> List[float]:
        """``[matcher.comparison_cost_factor(e1, e2) ...]``, batched.

        Same float sequence as the scalar loop: per quadratic rule in
        original order, ``(len(v1) + len(v2)) / 2.0`` summed, divided by
        ``quadratic_rules * REFERENCE_LENGTH`` and clamped.
        """
        quad = self._quad_indices
        if not quad:
            return [MIN_COST_FACTOR] * len(pairs)
        denominator = self._cost_denominator
        rows = self._rows
        out = []
        for e1, e2 in pairs:
            lens1 = (rows.get(e1.id) or self._row(e1))[1]
            lens2 = (rows.get(e2.id) or self._row(e2))[1]
            chars = 0.0
            for index in quad:
                chars += (lens1[index] + lens2[index]) / 2.0
            factor = chars / denominator
            out.append(factor if factor > MIN_COST_FACTOR else MIN_COST_FACTOR)
        return out


# ---------------------------------------------------------------------------
# Functional wrappers
# ---------------------------------------------------------------------------


def batch_similarity(
    rules: Sequence[AttributeRule], pairs: PairSeq, *, use_numpy: bool = True
) -> List[float]:
    """Weighted similarities of ``pairs`` under ``rules``, batched.

    Equivalent to ``[WeightedMatcher(rules, t).similarity(e1, e2) ...]``
    for any threshold ``t`` (the threshold never enters the similarity).
    """
    matcher = WeightedMatcher(rules, threshold=1.0)
    return BatchMatcher(matcher, use_numpy=use_numpy).similarities(pairs)


def batch_is_match(
    matcher: WeightedMatcher, pairs: PairSeq, *, use_numpy: bool = True
) -> List[bool]:
    """``[matcher.is_match(e1, e2) for e1, e2 in pairs]``, batched."""
    return BatchMatcher(matcher, use_numpy=use_numpy).decisions(pairs)


def batch_cost_factors(
    matcher: WeightedMatcher, pairs: PairSeq
) -> List[float]:
    """``[matcher.comparison_cost_factor(e1, e2) ...]``, batched."""
    return BatchMatcher(matcher).cost_factors(pairs)


__all__ = [
    "BatchMatcher",
    "batch_similarity",
    "batch_is_match",
    "batch_cost_factors",
    "batch_kernel_counters",
    "reset_batch_kernel_counters",
    "NUMPY_MIN_PAIRS",
]
