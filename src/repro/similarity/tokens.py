"""Token- and q-gram-based similarity.

Alternatives to edit distance for long or reordered values (author lists,
abstracts): word-token Jaccard is robust to word order; q-gram Jaccard is
robust to small edits while staying near-linear in string length.
"""

from __future__ import annotations

from typing import FrozenSet, Set


def word_tokens(text: str) -> FrozenSet[str]:
    """Lower-cased whitespace tokens of ``text``, stripped of surrounding
    punctuation ("smith," and "smith" are the same author token)."""
    tokens = (token.strip(".,;:!?()[]'\"") for token in text.lower().split())
    return frozenset(token for token in tokens if token)


def qgrams(text: str, q: int = 2, *, pad: bool = True) -> FrozenSet[str]:
    """The q-gram set of ``text``.

    With ``pad`` (the standard construction) the string is wrapped in
    ``q - 1`` sentinel characters on each side, so leading/trailing
    characters weigh as much as inner ones.
    """
    if q < 1:
        raise ValueError(f"q must be at least 1, got {q}")
    if not text:
        return frozenset()
    if pad and q > 1:
        sentinel = "\x00" * (q - 1)
        text = f"{sentinel}{text}{sentinel}"
    if len(text) < q:
        return frozenset({text})
    return frozenset(text[i : i + q] for i in range(len(text) - q + 1))


def jaccard(a: Set[str] | FrozenSet[str], b: Set[str] | FrozenSet[str]) -> float:
    """Jaccard coefficient of two sets (1.0 when both are empty)."""
    if not a and not b:
        return 1.0
    union = len(a | b)
    if union == 0:
        return 1.0
    return len(a & b) / union


def token_jaccard(a: str, b: str) -> float:
    """Word-token Jaccard similarity of two strings."""
    return jaccard(word_tokens(a), word_tokens(b))


def qgram_jaccard(a: str, b: str, q: int = 2) -> float:
    """q-gram Jaccard similarity of two strings."""
    return jaccard(qgrams(a, q), qgrams(b, q))


__all__ = ["word_tokens", "qgrams", "jaccard", "token_jaccard", "qgram_jaccard"]
