"""Edit-distance kernels.

The paper's match function compares attribute values with edit distance
(Levenshtein).  The implementation below is a two-row dynamic program with
two standard optimizations that matter for a pure-Python ER workload:

* **Upper-bound banding** — when the caller only needs to know whether the
  distance is below ``max_distance`` (similarity thresholding), cells
  further than the bound from the diagonal can never contribute, so the DP
  explores a band of width ``2 * max_distance + 1`` and exits early when a
  whole row exceeds the bound.
* **Common prefix/suffix stripping** — duplicates usually share long runs.
* **Myers' bit-parallel kernel** — unbounded distances are computed with
  the bit-vector algorithm of Myers (JACM 1999): the whole DP column lives
  in one Python integer, so each of the ``n`` iterations is a handful of
  word-level operations.  Two orders of magnitude faster than the scalar
  DP on abstract-length strings.
"""

from __future__ import annotations

from typing import Dict, Optional

#: Cumulative DP work per kernel, in cell (or column) visits.  Cheap to
#: maintain — one addition per row, never per cell — and the perf-smoke
#: bench uses it to prove threshold propagation actually shrinks the
#: quadratic work.  Wall-clock bookkeeping only: nothing in the package
#: ever branches on these values.
_DP_CELLS: Dict[str, int] = {"full": 0, "banded": 0, "myers": 0}


def dp_cell_counters() -> Dict[str, int]:
    """Snapshot of cumulative DP cell visits per kernel (this process)."""
    return dict(_DP_CELLS)


def reset_dp_cell_counters() -> None:
    """Zero the DP cell-visit counters (benchmark hygiene)."""
    for key in _DP_CELLS:
        _DP_CELLS[key] = 0


def levenshtein(a: str, b: str, *, max_distance: Optional[int] = None) -> int:
    """Levenshtein distance between ``a`` and ``b``.

    With ``max_distance`` set, returns ``max_distance + 1`` as soon as the
    true distance is provably greater than the bound (banded computation).
    """
    if a == b:
        return 0
    # Strip the common prefix and suffix; they never affect the distance.
    start = 0
    limit = min(len(a), len(b))
    while start < limit and a[start] == b[start]:
        start += 1
    end_a, end_b = len(a), len(b)
    while end_a > start and end_b > start and a[end_a - 1] == b[end_b - 1]:
        end_a -= 1
        end_b -= 1
    a, b = a[start:end_a], b[start:end_b]
    if not a:
        return _bounded(len(b), max_distance)
    if not b:
        return _bounded(len(a), max_distance)
    if len(a) > len(b):
        a, b = b, a
    if max_distance is not None and len(b) - len(a) > max_distance:
        return max_distance + 1

    if max_distance is None:
        return _myers_dp(a, b)
    if 2 * max_distance + 1 >= len(a):
        # The band would cover (nearly) whole rows: the scalar banded DP
        # has no cells left to skip, while the bit-parallel kernel does the
        # same rows in word-sized chunks.  Results are identical — Myers is
        # exact and _bounded applies the caller's clamp convention.
        return _bounded(_myers_dp(a, b), max_distance)
    return _banded_dp(a, b, max_distance)


def _bounded(distance: int, max_distance: Optional[int]) -> int:
    """Clamp a known distance to the caller's bound convention."""
    if max_distance is not None and distance > max_distance:
        return max_distance + 1
    return distance


def _full_dp(a: str, b: str) -> int:
    """Classic two-row DP, no bound."""
    _DP_CELLS["full"] += len(a) * len(b)
    previous = list(range(len(a) + 1))
    current = [0] * (len(a) + 1)
    for j, cb in enumerate(b, start=1):
        current[0] = j
        for i, ca in enumerate(a, start=1):
            cost = 0 if ca == cb else 1
            current[i] = min(
                previous[i] + 1,        # deletion
                current[i - 1] + 1,     # insertion
                previous[i - 1] + cost, # substitution
            )
        previous, current = current, previous
    return previous[len(a)]


def _myers_dp(a: str, b: str) -> int:
    """Myers' bit-parallel Levenshtein (JACM '99), arbitrary lengths.

    ``a`` (the pattern, kept as the shorter string) is encoded as one
    bitmask per character; the vertical delta vectors ``vp`` / ``vn`` live
    in single Python integers, so long patterns transparently use big-int
    words with no code change.
    """
    if len(a) > len(b):
        a, b = b, a
    _DP_CELLS["myers"] += len(b)
    m = len(a)
    peq: Dict[str, int] = {}
    for i, ch in enumerate(a):
        peq[ch] = peq.get(ch, 0) | (1 << i)
    mask = (1 << m) - 1
    last = 1 << (m - 1)
    vp = mask
    vn = 0
    distance = m
    for ch in b:
        eq = peq.get(ch, 0)
        d0 = ((((eq & vp) + vp) ^ vp) | eq | vn) & mask
        hp = vn | ~(d0 | vp)
        hn = d0 & vp
        if hp & last:
            distance += 1
        elif hn & last:
            distance -= 1
        hp = ((hp << 1) | 1) & mask
        hn = (hn << 1) & mask
        vp = (hn | (~(d0 | hp) & mask)) & mask
        vn = d0 & hp
    return distance


def _banded_dp(a: str, b: str, bound: int) -> int:
    """Two-row DP restricted to a diagonal band of half-width ``bound``.

    Only band cells are ever touched: row ``j`` writes ``[lo-1, hi]`` and
    row ``j+1`` reads ``previous`` on ``[lo'-1, hi']`` with ``lo' >= lo``
    and ``hi' <= hi+1``, so the single cell ``hi+1`` is the only one that
    can leak a stale value across the swap — it is pinned to ``big``
    explicitly instead of wiping the whole row (which would cost
    ``O(len(a))`` per row regardless of band width).  The scratch row needs
    no reset at all: every cell the inner loop reads from ``current`` was
    written earlier in the same row.
    """
    big = bound + 1
    previous = [i if i <= bound else big for i in range(len(a) + 1)]
    current = [big] * (len(a) + 1)
    cells = 0
    for j, cb in enumerate(b, start=1):
        lo = max(1, j - bound)
        hi = min(len(a), j + bound)
        cells += hi - lo + 1
        current[lo - 1] = j if (j <= bound and lo == 1) else big
        row_min = current[lo - 1]
        for i in range(lo, hi + 1):
            ca = a[i - 1]
            cost = 0 if ca == cb else 1
            best = previous[i - 1] + cost
            if previous[i] + 1 < best:
                best = previous[i] + 1
            if current[i - 1] + 1 < best:
                best = current[i - 1] + 1
            current[i] = best if best <= bound else big
            if current[i] < row_min:
                row_min = current[i]
        if row_min > bound:
            _DP_CELLS["banded"] += cells
            return big
        if hi < len(a):
            current[hi + 1] = big
        previous, current = current, previous
    _DP_CELLS["banded"] += cells
    return previous[len(a)] if previous[len(a)] <= bound else big


def edit_similarity(a: str, b: str) -> float:
    """Normalized edit similarity ``1 - dist / max(len)`` in [0, 1].

    Empty-vs-empty compares as 1.0; empty-vs-nonempty as 0.0.
    """
    if not a and not b:
        return 1.0
    longest = max(len(a), len(b))
    return 1.0 - levenshtein(a, b) / longest


def edit_similarity_at_least(a: str, b: str, threshold: float) -> bool:
    """Whether ``edit_similarity(a, b) >= threshold``, with banded early exit."""
    if not a and not b:
        return True
    longest = max(len(a), len(b))
    if longest == 0:
        return True
    allowed = int((1.0 - threshold) * longest)
    return levenshtein(a, b, max_distance=allowed) <= allowed


__all__ = [
    "levenshtein",
    "edit_similarity",
    "edit_similarity_at_least",
    "dp_cell_counters",
    "reset_dp_cell_counters",
]
