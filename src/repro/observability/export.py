"""Trace exporters: Chrome ``trace_event`` JSON, JSONL, terminal summary.

Three consumers, three formats:

* :func:`write_chrome_trace` — the Chrome/Perfetto ``trace_event`` array
  (https://ui.perfetto.dev loads it directly).  Each ``(run, job)`` pair
  becomes a *process*; track 0 carries the job/phase ``B``/``E`` pairs and
  every slot becomes a named *thread* carrying ``X`` (complete) events for
  task attempts and per-block resolutions, plus ``i`` instants for
  incremental output-file flushes.
* :func:`write_trace_jsonl` — one JSON object per span/instant, in
  recording order, for ad-hoc ``jq``-style analysis.
* :func:`format_trace_summary` — a terminal per-task Gantt with the skew
  statistics that matter for MR-based ER (Kolb et al.: per-task skew is
  the dominant effect): per-phase makespan, max/mean task cost, and per
  reduce task its block count and duplicates found.

Virtual time has no unit, so the Chrome export scales one cost unit to
:data:`TS_SCALE` microseconds (1 ms) purely for comfortable zoom levels.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Tuple

from .tracing import SCHEDULER_TRACK, Instant, Span, Tracer

#: Chrome trace timestamps are microseconds; one virtual cost unit is
#: rendered as one millisecond.
TS_SCALE = 1000.0

#: Phase letters this exporter emits (the validator accepts exactly these).
CHROME_PHASES = ("B", "E", "X", "i", "M")


# ---------------------------------------------------------------------------
# Chrome trace_event
# ---------------------------------------------------------------------------


def chrome_trace_events(tracer: Tracer) -> List[Dict[str, Any]]:
    """Flatten a tracer into a Chrome ``trace_event`` array."""
    events: List[Dict[str, Any]] = []
    pids = {key: pid for pid, key in enumerate(tracer.jobs())}

    by_job: Dict[Tuple[str, str], List[Span]] = {key: [] for key in pids}
    for span in tracer.spans:
        by_job[(span.run, span.job)].append(span)
    instants_by_job: Dict[Tuple[str, str], List[Instant]] = {key: [] for key in pids}
    for instant in tracer.instants:
        instants_by_job[(instant.run, instant.job)].append(instant)

    for key, pid in pids.items():
        run, job = key
        events.append(_metadata(pid, SCHEDULER_TRACK, "process_name",
                                f"{run}:{job}" if run else job))
        events.append(_metadata(pid, SCHEDULER_TRACK, "thread_name", "scheduler"))
        spans = by_job[key]
        for track in sorted({s.track for s in spans if s.track != SCHEDULER_TRACK}):
            events.append(_metadata(pid, track, "thread_name", f"slot-{track - 1}"))

        # Job/phase spans as properly nested B/E pairs: the job opens,
        # phases open/close in start order, the job closes.
        job_spans = [s for s in spans if s.category == "job"]
        phase_spans = sorted(
            (s for s in spans if s.category == "phase"), key=lambda s: (s.start, s.name)
        )
        for span in job_spans:
            events.append(_duration(pid, span, "B", span.start))
        for span in phase_spans:
            events.append(_duration(pid, span, "B", span.start))
            events.append(_duration(pid, span, "E", span.end))
        for span in job_spans:
            events.append(_duration(pid, span, "E", span.end))

        for span in spans:
            if span.category in ("job", "phase"):
                continue
            events.append(
                {
                    "name": span.name,
                    "cat": span.category,
                    "ph": "X",
                    "ts": span.start * TS_SCALE,
                    "dur": span.duration * TS_SCALE,
                    "pid": pid,
                    "tid": span.track,
                    "args": dict(span.args),
                }
            )
        for instant in instants_by_job[key]:
            events.append(
                {
                    "name": instant.name,
                    "cat": instant.category,
                    "ph": "i",
                    "s": "t",
                    "ts": instant.time * TS_SCALE,
                    "pid": pid,
                    "tid": instant.track,
                    "args": dict(instant.args),
                }
            )
    return events


def _metadata(pid: int, tid: int, name: str, value: str) -> Dict[str, Any]:
    return {
        "name": name,
        "ph": "M",
        "ts": 0.0,
        "pid": pid,
        "tid": tid,
        "args": {"name": value},
    }


def _duration(pid: int, span: Span, ph: str, ts: float) -> Dict[str, Any]:
    return {
        "name": span.name,
        "cat": span.category,
        "ph": ph,
        "ts": ts * TS_SCALE,
        "pid": pid,
        "tid": span.track,
        "args": dict(span.args) if ph == "B" else {},
    }


def write_chrome_trace(tracer: Tracer, path: str) -> None:
    """Write the Chrome ``trace_event`` JSON array to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(chrome_trace_events(tracer), handle)
        handle.write("\n")


def validate_chrome_trace(events: object) -> None:
    """Raise ``ValueError`` unless ``events`` is a well-formed trace.

    Checks the shape Perfetto/chrome://tracing rely on: a JSON array of
    objects, required keys per event, known phase letters, ``dur`` on
    ``X`` events, and balanced ``B``/``E`` pairs per ``(pid, tid)``.
    """
    if not isinstance(events, list):
        raise ValueError(f"trace must be a JSON array, got {type(events).__name__}")
    depth: Dict[Tuple[Any, Any], int] = {}
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"event {index} is not an object")
        for required in ("name", "ph", "pid", "tid", "ts"):
            if required not in event:
                raise ValueError(f"event {index} lacks required key {required!r}")
        ph = event["ph"]
        if ph not in CHROME_PHASES:
            raise ValueError(f"event {index} has unknown phase letter {ph!r}")
        if ph == "X" and "dur" not in event:
            raise ValueError(f"X event {index} lacks 'dur'")
        lane = (event["pid"], event["tid"])
        if ph == "B":
            depth[lane] = depth.get(lane, 0) + 1
        elif ph == "E":
            depth[lane] = depth.get(lane, 0) - 1
            if depth[lane] < 0:
                raise ValueError(f"unbalanced E event {index} on lane {lane}")
    unbalanced = {lane: d for lane, d in depth.items() if d != 0}
    if unbalanced:
        raise ValueError(f"unclosed B events on lanes {sorted(unbalanced)}")


# ---------------------------------------------------------------------------
# JSONL
# ---------------------------------------------------------------------------


def trace_records(tracer: Tracer) -> Iterable[Dict[str, Any]]:
    """Spans then instants as plain dicts, in recording order."""
    for span in tracer.spans:
        yield {
            "type": "span",
            "name": span.name,
            "category": span.category,
            "start": span.start,
            "end": span.end,
            "job": span.job,
            "run": span.run,
            "track": span.track,
            "args": dict(span.args),
        }
    for instant in tracer.instants:
        yield {
            "type": "instant",
            "name": instant.name,
            "category": instant.category,
            "time": instant.time,
            "job": instant.job,
            "run": instant.run,
            "track": instant.track,
            "args": dict(instant.args),
        }


def write_trace_jsonl(tracer: Tracer, path: str) -> None:
    """Write one JSON object per span/instant to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        for record in trace_records(tracer):
            handle.write(json.dumps(record, sort_keys=True))
            handle.write("\n")


# ---------------------------------------------------------------------------
# Terminal Gantt / skew summary
# ---------------------------------------------------------------------------


def format_trace_summary(tracer: Tracer, *, width: int = 48) -> str:
    """Per-job phase statistics plus a reduce-task Gantt with block counts."""
    if width < 10:
        raise ValueError("width too small to be readable")
    lines: List[str] = []
    for run, job in tracer.jobs():
        spans = tracer.spans_of(run, job)
        tasks = [s for s in spans if s.category == "task"]
        if not tasks:
            continue
        title = f"{run}:{job}" if run else job
        lines.append(title)
        job_span = next((s for s in spans if s.category == "job"), None)
        lo = job_span.start if job_span else min(s.start for s in tasks)
        hi = job_span.end if job_span else max(s.end for s in tasks)
        horizon = max(hi - lo, 1e-12)

        blocks_per_task: Dict[int, int] = {}
        dups_per_task: Dict[int, int] = {}
        for span in spans:
            if span.category == "block":
                task = span.arg("task")
                blocks_per_task[task] = blocks_per_task.get(task, 0) + 1
                dups_per_task[task] = dups_per_task.get(task, 0) + int(
                    span.arg("duplicates", 0)
                )

        attempts = [s for s in spans if s.category == "attempt"]
        for phase in ("map", "reduce"):
            phase_tasks = sorted(
                (s for s in tasks if s.arg("phase") == phase),
                key=lambda s: s.arg("task", 0),
            )
            if not phase_tasks:
                continue
            costs = [s.duration for s in phase_tasks]
            mean = sum(costs) / len(costs)
            skew = max(costs) / mean if mean > 0 else 1.0
            lines.append(
                f"  {phase:<6s} {len(phase_tasks):3d} tasks  "
                f"makespan {max(s.end for s in phase_tasks) - lo:,.1f}  "
                f"skew {skew:.2f} (max {max(costs):,.1f} / mean {mean:,.1f})"
            )
            phase_attempts = [s for s in attempts if s.arg("phase") == phase]
            if phase_attempts:
                # Fault-injection line: only rendered when retries or
                # speculation actually happened, so fault-free output is
                # unchanged.
                failed = sum(1 for s in phase_attempts if s.arg("failed"))
                killed = sum(1 for s in phase_attempts if s.arg("killed"))
                spec = sum(1 for s in phase_attempts if s.arg("speculative"))
                lines.append(
                    f"         {len(phase_attempts):3d} extra attempts  "
                    f"{failed} failed, {killed} killed, {spec} speculative"
                )
            for span in phase_tasks:
                task = span.arg("task", 0)
                start = int((span.start - lo) / horizon * width)
                stop = max(start + 1, int((span.end - lo) / horizon * width))
                bar = " " * start + "#" * (stop - start) + " " * (width - stop)
                annotation = f" cost {span.duration:10,.1f}"
                if phase == "reduce":
                    annotation += (
                        f"  blocks {blocks_per_task.get(task, 0):4d}"
                        f"  dups {dups_per_task.get(task, 0):4d}"
                    )
                if span.arg("attempt"):
                    annotation += f"  attempt {span.arg('attempt')}"
                if span.arg("speculative"):
                    annotation += "  speculative"
                lines.append(f"    {phase}[{task:3d}] |{bar}|{annotation}")
    return "\n".join(lines) if lines else "(empty trace)"


def _fmt_bytes(n: int) -> str:
    if n >= 1 << 20:
        return f"{n / (1 << 20):.1f}M"
    if n >= 1 << 10:
        return f"{n / (1 << 10):.1f}K"
    return str(n)


def format_perf_report(metrics: "MetricsRegistry") -> str:
    """Runtime cost breakdown of the parallel backend, one row per phase.

    Renders the ``driver.*`` counters the executor drains into each phase
    snapshot (see ``Cluster._snapshot_phase``): task placement (fanned out
    vs kept inline under the serial floor), work-stealing pulls, wire bytes
    of the encoded payloads with the plain-pickle baseline they replace,
    and wall-clock seconds per phase.  Footer lines aggregate pool forks,
    the overall wire compression ratio, the shared-memory vs descriptor
    byte split, work-stealing/idle totals, and matcher-cache traffic.
    """
    rows = []
    for snap in metrics.snapshots:
        extra = dict(snap.extra)
        if "wall_seconds" not in extra:
            continue
        counters = dict(snap.counters)
        rows.append((snap.scope, extra, counters))
    if not rows:
        return "(no phase snapshots; attach a MetricsRegistry and re-run)"

    lines: List[str] = []
    scope_width = max(len(scope) for scope, _, _ in rows)
    scope_width = max(scope_width, len("phase"))
    header = (
        f"{'phase':<{scope_width}}  {'backend':<8} {'tasks':>5} "
        f"{'wall s':>8} {'fanned':>6} {'inline':>6} {'steals':>6} "
        f"{'wire':>8} {'raw':>8} {'ratio':>6}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    total_wire = total_raw = 0
    total_descriptor = total_shm = 0
    total_steals = total_idle_ms = 0
    for scope, extra, counters in rows:
        wire = counters.get(
            "driver.payload_wire_bytes",
            counters.get("driver.ipc_payload_bytes", 0),
        )
        raw = counters.get("driver.ipc_payload_raw_bytes", 0)
        total_wire += wire
        total_raw += raw
        total_descriptor += counters.get("driver.ipc_bytes", 0)
        total_shm += counters.get("driver.shm_input_bytes", 0)
        total_shm += counters.get("driver.shm_payload_bytes", 0)
        total_steals += counters.get("driver.steal_tasks", 0)
        total_idle_ms += counters.get("driver.worker_idle_ms", 0)
        ratio = f"{raw / wire:5.1f}x" if wire else "     -"
        lines.append(
            f"{scope:<{scope_width}}  {str(extra.get('backend', '?')):<8} "
            f"{extra.get('tasks', 0):>5} "
            f"{extra.get('wall_seconds', 0.0):>8.3f} "
            f"{counters.get('driver.tasks_fanned', 0):>6} "
            f"{counters.get('driver.tasks_inline', 0):>6} "
            f"{counters.get('driver.steal_tasks', 0):>6} "
            f"{_fmt_bytes(wire):>8} {_fmt_bytes(raw):>8} {ratio:>6}"
        )

    forks = sum(c.get("driver.pool_forks", 0) for _, _, c in rows)
    # Matcher deltas accumulate across a job's phases, so per job only the
    # last phase snapshot counts; sum those across jobs.
    per_job: Dict[str, Tuple[int, int]] = {}
    for scope, _, c in rows:
        per_job[scope.rsplit("/", 1)[0]] = (
            c.get("matcher.cache_hits", 0),
            c.get("matcher.cache_misses", 0),
        )
    hits = sum(h for h, _ in per_job.values())
    misses = sum(m for _, m in per_job.values())
    lines.append("-" * len(header))
    lines.append(f"pool forks: {forks}")
    if total_wire:
        lines.append(
            f"payload wire bytes: {_fmt_bytes(total_wire)} "
            f"(plain pickle {_fmt_bytes(total_raw)}, "
            f"{total_raw / total_wire:.1f}x smaller)"
        )
    if total_shm or total_descriptor:
        lines.append(
            f"transport: {_fmt_bytes(total_shm)} via shared memory, "
            f"{_fmt_bytes(total_descriptor)} descriptors on queues"
        )
    if total_steals or total_idle_ms:
        lines.append(
            f"work stealing: {total_steals} steals, "
            f"workers idle {total_idle_ms} ms total"
        )
    if hits or misses:
        lines.append(f"matcher cache: {hits} hits / {misses} misses")
    return "\n".join(lines)


def format_sched_report(report: Any) -> str:
    """Human-readable summary of a scheduler trace.

    Takes a :class:`~repro.scheduling.report.SchedulerReport`: one row
    per submission (decision, lane, arrival → start → finish, wait and
    latency in virtual time), then per-tenant fair-share usage and the
    per-lane p50/p99 latency footer the bench asserts on.
    """
    lines: List[str] = [f"policy: {report.policy}"]
    name_width = max(
        [len("job")] + [len(o.job) for o in report.outcomes]
    )
    header = (
        f"{'job':<{name_width}}  {'tenant':<10} {'lane':<11} "
        f"{'decision':<8} {'arrival':>9} {'start':>9} {'finish':>10} "
        f"{'wait':>8} {'latency':>9} {'slot-s':>9}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for o in report.outcomes:
        def cell(value: Optional[float], width: int = 9) -> str:
            return f"{'-':>{width}}" if value is None else f"{value:>{width}.2f}"

        lines.append(
            f"{o.job:<{name_width}}  {o.tenant:<10} {o.lane:<11} "
            f"{o.decision:<8} {o.arrival:>9.2f} {cell(o.started_at)} "
            f"{cell(o.finished_at, 10)} {o.wait_total:>8.2f} "
            f"{cell(o.latency)} {o.slot_seconds:>9.2f}"
        )
    lines.append("")
    for tenant in report.tenants:
        lines.append(
            f"tenant {tenant.name}: weight {tenant.weight:g}, "
            f"{tenant.slot_seconds:.2f} slot-seconds "
            f"(vtime {tenant.vtime:.2f}), "
            f"{tenant.completed}/{tenant.submitted} completed, "
            f"{tenant.rejected} rejected"
        )
    for lane in ("interactive", "batch"):
        pct = report.latency_percentiles(lane=lane)
        if pct is not None:
            lines.append(
                f"{lane} latency: p50 {pct['p50']:.2f}, p99 {pct['p99']:.2f}"
            )
    lines.append(
        f"makespan {report.makespan:.2f}, "
        f"busy map {report.busy.get('map', 0.0):.2f} / "
        f"reduce {report.busy.get('reduce', 0.0):.2f}, "
        f"peak queue depth {report.queue_depth_peak}, "
        f"open leases {report.open_leases}"
    )
    return "\n".join(lines)


def format_calibration_report(report: Dict[str, Any]) -> str:
    """Human-readable summary of a cost-model calibration report.

    Takes the dict produced by
    :func:`~repro.core.calibration.calibration_report`: fitted real-seconds
    prices per virtual unit and per operation, the CostModel ratios this
    machine implies, and the error band of the fit.
    """
    lines: List[str] = [
        f"cost-model calibration — backend {report.get('backend', '?')}, "
        f"{report.get('workers', 1)} workers, "
        f"{report.get('cpus_visible', '?')} visible CPUs"
    ]
    if report.get("parallelism_limited"):
        lines.append(
            "  WARNING: fewer visible CPUs than workers — queueing inflates "
            "per-task wall time; treat fitted prices as upper bounds"
        )
    workload = report.get("workload") or {}
    if workload:
        desc = ", ".join(f"{k}={v}" for k, v in sorted(workload.items()))
        lines.append(f"workload: {desc}")
    lines.append("")
    header = f"{'category':<10} {'s/unit':>12} {'s/op':>12} {'fitted const':>13}"
    lines.append(header)
    lines.append("-" * len(header))
    per_unit = report.get("seconds_per_unit", {})
    per_op = report.get("seconds_per_op", {})
    constants = report.get("fitted_constants", {})
    op_key = {"compare": "compare", "emit": "emit", "shuffle": "shuffle",
              "read": "read", "sort": "sort_item"}
    for category in ("compare", "emit", "shuffle", "sort", "read", "other",
                     "task"):
        price = per_unit.get(category, 0.0)
        op = per_op.get(op_key.get(category, ""), None)
        op_cell = f"{op:>12.3e}" if op is not None else f"{'-':>12}"
        lines.append(
            f"{category:<10} {price:>12.3e} {op_cell} "
            f"{constants.get(category, 0.0):>13.4f}"
        )
    lines.append("")
    lines.append(
        f"fit: {report.get('samples_used', 0)} tasks sampled, "
        f"{report.get('samples_scored', 0)} scored, "
        f"median APE {report.get('median_ape', float('nan')) * 100.0:.1f}%, "
        f"residual RMS {report.get('residual_rms_seconds', 0.0):.3e} s"
    )
    band = report.get("error_band")
    if band:
        lines.append(band)
    return "\n".join(lines)


__all__ = [
    "TS_SCALE",
    "CHROME_PHASES",
    "chrome_trace_events",
    "write_chrome_trace",
    "validate_chrome_trace",
    "trace_records",
    "write_trace_jsonl",
    "format_trace_summary",
    "format_calibration_report",
    "format_perf_report",
    "format_sched_report",
]
