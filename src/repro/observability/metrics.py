"""Phase-scoped counter snapshots.

Hadoop prints its job counters once, at job end; diagnosing a progressive
run needs them *per phase* (how much did the map side emit before the
shuffle? how many comparisons did the reduce side actually pay for?) and
across sources the job counters never see — notably the process-wide
similarity-cache statistics of :mod:`repro.similarity.matchers`.

A :class:`MetricsRegistry` collects :class:`MetricsSnapshot` records, each
a flattened ``{"group.name": value}`` view (see
:meth:`repro.mapreduce.counters.Counters.as_flat_dict`) taken at a named
point: the engine snapshots cumulative job counters at the end of each
phase, and :class:`~repro.evaluation.experiment.ExperimentRun` adds a
matcher-cache snapshot per run.

Counter values are deterministic across execution backends; the *matcher
cache* snapshots are not (each worker process owns a cache), which is why
cache statistics live here and never inside job counters.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Tuple, Union

from ..mapreduce.counters import Counters

#: What ``snapshot`` accepts: job counters or an already-flat mapping.
CounterSource = Union[Counters, Mapping[str, int], None]


@dataclass(frozen=True)
class MetricsSnapshot:
    """One named counter snapshot plus free-form annotations."""

    scope: str
    counters: Tuple[Tuple[str, int], ...]
    extra: Tuple[Tuple[str, Any], ...] = ()

    def as_dict(self) -> Dict[str, Any]:
        entry: Dict[str, Any] = {"scope": self.scope, "counters": dict(self.counters)}
        entry.update(dict(self.extra))
        return entry

    def get(self, flat_name: str, default: int = 0) -> int:
        """Value of one flattened counter (``"group.name"``)."""
        for name, value in self.counters:
            if name == flat_name:
                return value
        return default


class MetricsRegistry:
    """Append-only list of snapshots, labeled per experiment run."""

    def __init__(self) -> None:
        self.snapshots: List[MetricsSnapshot] = []
        self._run_label = ""

    def begin_run(self, label: str) -> None:
        """Prefix subsequent snapshot scopes with ``label``."""
        self._run_label = label

    def snapshot(self, scope: str, counters: CounterSource = None, **extra: Any) -> None:
        """Record ``counters`` (flattened) under ``scope``.

        ``extra`` keyword annotations (backend name, task counts, phase end
        times, …) are stored alongside and exported verbatim.
        """
        if isinstance(counters, Counters):
            flat: Mapping[str, int] = counters.as_flat_dict()
        else:
            flat = dict(counters) if counters else {}
        if self._run_label:
            scope = f"{self._run_label}:{scope}"
        self.snapshots.append(
            MetricsSnapshot(
                scope=scope,
                counters=tuple(sorted(flat.items())),
                extra=tuple(sorted(extra.items())),
            )
        )

    # -- queries / export ----------------------------------------------

    def scoped(self, scope: str) -> List[MetricsSnapshot]:
        """All snapshots whose scope equals or ends with ``scope``."""
        return [
            s
            for s in self.snapshots
            if s.scope == scope or s.scope.endswith(f":{scope}")
        ]

    def as_dict(self) -> Dict[str, Any]:
        return {"snapshots": [s.as_dict() for s in self.snapshots]}

    def write_json(self, path: str) -> None:
        """Write every snapshot as one pretty-printed JSON document."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.as_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    def __len__(self) -> int:
        return len(self.snapshots)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MetricsRegistry(snapshots={len(self.snapshots)})"


__all__ = ["MetricsSnapshot", "MetricsRegistry", "CounterSource"]
