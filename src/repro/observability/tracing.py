"""Structured tracing of the simulated cluster, in virtual time.

The paper's contribution is a *rate* — recall as a function of time — so
understanding a run means seeing where that time goes: which map wave
stalls the shuffle, which reduce task grinds through an overflowed tree,
which blocks dominate a schedule.  A :class:`Tracer` records a hierarchy
of spans over the **virtual** timeline the engine already computes:

``job → phase → task attempt → per-block resolution``

* **job / phase** spans come straight from the engine's phase boundaries
  (``start_time`` / ``map_phase_end`` / ``end_time``);
* **task / attempt** spans come from :class:`~repro.mapreduce.engine.SlotPool`
  placements (one span per attempt, failed attempts included), carrying the
  slot index so a viewer lays tasks out one row per slot.  Under a
  :class:`~repro.mapreduce.faults.FaultPlan`, each non-winning attempt is
  an ``"attempt"`` span flagged ``failed=True`` or ``killed=True`` (plus
  ``speculative=True`` for backups) and the winning attempt is the
  ``"task"`` span, annotated with its attempt ordinal / speculative flag
  only when non-default — so a fault-free plan emits byte-identical spans;
* **block / setup** spans are recorded *inside* tasks as
  :class:`~repro.mapreduce.types.SpanFragment` objects in task-local time
  and rebased by the engine — they travel in the task payload, so the
  serial and process backends emit bit-identical traces.

Tracing is strictly an observer: recording a span never charges virtual
cost, so events, counters and recall curves are identical with and without
a tracer attached (pinned by ``tests/test_trace_parity.py``).  When no
tracer is attached the engine skips every recording call — zero cost.

Exporters live in :mod:`repro.observability.export`: Chrome
``trace_event`` JSON (open in ``chrome://tracing`` or https://ui.perfetto.dev),
a JSONL event log, and a terminal per-task Gantt/skew summary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Tuple

#: Track index reserved for job- and phase-level spans; slot ``s`` of a
#: phase's slot pool maps to track ``s + 1``.
SCHEDULER_TRACK = 0


@dataclass(frozen=True)
class Span:
    """One closed interval of virtual time on a track.

    Attributes:
        name: human-readable label (``"map-3"``, ``"resolve:X2:ab"``).
        category: span class — ``"job"``, ``"phase"``, ``"task"``,
            ``"attempt"``, ``"block"`` or ``"setup"``.
        start / end: global virtual time bounds.
        job: name of the job the span belongs to.
        run: experiment-run label (empty outside an experiment harness).
        track: rendering lane — :data:`SCHEDULER_TRACK` for job/phase
            spans, ``slot + 1`` for spans executed on a slot.
        args: sorted ``(key, value)`` annotations (hashable, JSON-safe).
    """

    name: str
    category: str
    start: float
    end: float
    job: str
    run: str = ""
    track: int = SCHEDULER_TRACK
    args: Tuple[Tuple[str, Any], ...] = ()

    @property
    def duration(self) -> float:
        return self.end - self.start

    def arg(self, key: str, default: Any = None) -> Any:
        """Value of one annotation key."""
        for k, v in self.args:
            if k == key:
                return v
        return default


@dataclass(frozen=True)
class Instant:
    """A point occurrence on the virtual timeline (e.g. an output-file
    flush making incremental duplicates readable)."""

    name: str
    category: str
    time: float
    job: str
    run: str = ""
    track: int = SCHEDULER_TRACK
    args: Tuple[Tuple[str, Any], ...] = ()

    def arg(self, key: str, default: Any = None) -> Any:
        for k, v in self.args:
            if k == key:
                return v
        return default


def freeze_args(args: Dict[str, Any]) -> Tuple[Tuple[str, Any], ...]:
    """Normalize an annotation dict into the sorted-tuple form spans use."""
    return tuple(sorted(args.items()))


class Tracer:
    """Append-only sink for spans and instants, in recording order.

    One tracer can span several runs (the CLI's ``compare`` records every
    approach into one file); :meth:`begin_run` labels everything recorded
    until the next call.  The tracer itself is passive — the engine and the
    task contexts decide *what* to record; see the module docstring for the
    span hierarchy.
    """

    def __init__(self) -> None:
        self.spans: List[Span] = []
        self.instants: List[Instant] = []
        self._run_label = ""

    # -- recording ------------------------------------------------------

    def begin_run(self, label: str) -> None:
        """Label subsequently recorded spans with ``label``."""
        self._run_label = label

    def record_span(
        self,
        name: str,
        category: str,
        start: float,
        end: float,
        *,
        job: str,
        track: int = SCHEDULER_TRACK,
        **args: Any,
    ) -> None:
        """Record one closed span (global virtual time)."""
        self.spans.append(
            Span(
                name=name,
                category=category,
                start=start,
                end=end,
                job=job,
                run=self._run_label,
                track=track,
                args=freeze_args(args),
            )
        )

    def record_instant(
        self,
        name: str,
        category: str,
        time: float,
        *,
        job: str,
        track: int = SCHEDULER_TRACK,
        **args: Any,
    ) -> None:
        """Record one point event (global virtual time)."""
        self.instants.append(
            Instant(
                name=name,
                category=category,
                time=time,
                job=job,
                run=self._run_label,
                track=track,
                args=freeze_args(args),
            )
        )

    # -- queries --------------------------------------------------------

    def jobs(self) -> List[Tuple[str, str]]:
        """Distinct ``(run, job)`` pairs in first-recorded order."""
        seen: Dict[Tuple[str, str], None] = {}
        for span in self.spans:
            seen.setdefault((span.run, span.job), None)
        for instant in self.instants:
            seen.setdefault((instant.run, instant.job), None)
        return list(seen)

    def spans_of(
        self, run: str, job: str, *, category: str | None = None
    ) -> List[Span]:
        """Spans of one job, optionally filtered by category."""
        return [
            s
            for s in self.spans
            if s.run == run
            and s.job == job
            and (category is None or s.category == category)
        ]

    def span_set(self) -> "frozenset[Span]":
        """Order-independent span identity — the cross-backend parity
        invariant (`serial` and `process` must emit the same set)."""
        return frozenset(self.spans)

    def __len__(self) -> int:
        return len(self.spans) + len(self.instants)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Tracer(spans={len(self.spans)}, instants={len(self.instants)})"


def iter_all(tracer: Tracer) -> Iterable[object]:
    """Spans then instants, each in recording order (export helper)."""
    yield from tracer.spans
    yield from tracer.instants


__all__ = [
    "SCHEDULER_TRACK",
    "Span",
    "Instant",
    "Tracer",
    "freeze_args",
    "iter_all",
]
