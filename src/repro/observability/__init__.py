"""Observability for the simulated cluster: tracing, metrics, exporters.

Attach a :class:`Tracer` and/or a :class:`MetricsRegistry` to a
:class:`~repro.mapreduce.engine.Cluster` (or pass them through
:class:`~repro.evaluation.experiment.RunSpec`) and the engine records
job → phase → task-attempt → per-block spans in virtual time plus
per-phase counter snapshots.  Tracing never charges virtual cost: results
are bit-identical with and without it.
"""

from .export import (
    CHROME_PHASES,
    TS_SCALE,
    chrome_trace_events,
    format_calibration_report,
    format_perf_report,
    format_sched_report,
    format_trace_summary,
    trace_records,
    validate_chrome_trace,
    write_chrome_trace,
    write_trace_jsonl,
)
from .metrics import MetricsRegistry, MetricsSnapshot
from .tracing import SCHEDULER_TRACK, Instant, Span, Tracer

__all__ = [
    "Tracer",
    "Span",
    "Instant",
    "SCHEDULER_TRACK",
    "MetricsRegistry",
    "MetricsSnapshot",
    "TS_SCALE",
    "CHROME_PHASES",
    "chrome_trace_events",
    "write_chrome_trace",
    "validate_chrome_trace",
    "trace_records",
    "write_trace_jsonl",
    "format_trace_summary",
    "format_calibration_report",
    "format_perf_report",
    "format_sched_report",
]
