"""Command-line interface.

Subcommands cover the common workflows:

* ``generate`` — write a synthetic dataset (with ground truth) to CSV or JSONL;
* ``run`` — resolve a dataset with one approach and print its recall curve;
* ``compare`` — our approach versus the Basic baseline side by side;
* ``serve`` — stream a JSONL entity file through the incremental
  :class:`~repro.service.resolver.ResolverService` in batches;
* ``submit`` — add one more batch to a saved service snapshot;
* ``sched`` — multi-tenant scheduler demo: Poisson arrivals of resolver
  batches from weighted tenants competing for shared slots;
* ``calibrate`` — fit the virtual cost model's constants to this host's
  wall clock and print the error band of the fit.

Examples::

    python -m repro generate --family citeseer --size 2000 --out ds.csv
    python -m repro run --dataset ds.csv --family citeseer --machines 10
    python -m repro run --family books --size 3000 --approach lpt
    python -m repro compare --family citeseer --size 1500 --threshold 0.01
    python -m repro run --family citeseer --size 1000 --trace trace.json --skew
    python -m repro compare --family books --size 800 --metrics metrics.json
    python -m repro run --family citeseer --size 1000 --fault-rate 0.1 --speculative
    python -m repro generate --family citeseer --size 900 --out ds.jsonl
    python -m repro serve --input ds.jsonl --batch-size 300 --snapshot-out state.json
    python -m repro submit --snapshot state.json --input more.jsonl --print-pairs
    python -m repro calibrate --family citeseer --size 800 --out calibration.json
    python -m repro run --family linkage --size 1200 --machines 6
    python -m repro run --family books --size 1500 --metablock bf --metablock-ratio 0.5
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional, Sequence

from .baselines import BasicConfig
from .blocking import books_scheme, citeseer_scheme, linkage_scheme, people_scheme
from .core import (
    BALANCE_STRATEGIES,
    METABLOCK_MODES,
    books_config,
    citeseer_config,
    format_balance_summary,
    format_metablock_summary,
    linkage_config,
    people_config,
    skewed_config,
)
from .data import (
    Dataset,
    Entity,
    make_books,
    make_citeseer,
    make_linkage,
    make_people,
    make_skewed,
)
from .data.profile import format_profile, profile_dataset, suggest_blocking_order
from .evaluation import (
    ExperimentRun,
    RunSpec,
    format_curves,
    format_fault_summary,
    format_final_summary,
    sample_times,
)
from .evaluation.charts import ascii_chart
from .mapreduce import BACKENDS, FaultPlan, RetryPolicy, SpeculationConfig
from .mapreduce.executors import make_executor
from .mechanisms import PSNM, SortedNeighborHint, set_default_batch_pairs
from .scheduling import AdmissionPolicy, JobScheduler, poisson_arrivals
from .observability import (
    MetricsRegistry,
    Tracer,
    format_calibration_report,
    format_perf_report,
    format_sched_report,
    format_trace_summary,
    write_chrome_trace,
    write_trace_jsonl,
)

_FAMILIES = ("citeseer", "books", "people", "skewed", "linkage")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Parallel progressive entity resolution (ICDE'17 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="write a synthetic dataset to CSV/JSONL")
    gen.add_argument("--family", choices=_FAMILIES, default="citeseer")
    gen.add_argument("--size", type=int, default=2000)
    gen.add_argument("--seed", type=int, default=7)
    gen.add_argument(
        "--out", required=True,
        help="output path (.jsonl writes one entity object per line for "
        "`serve`/`submit`; anything else writes CSV)",
    )

    run = sub.add_parser("run", help="resolve a dataset progressively")
    _add_dataset_options(run)
    run.add_argument(
        "--approach",
        choices=("ours", "nosplit", "lpt", "basic"),
        default="ours",
    )
    run.add_argument("--machines", type=int, default=10)
    run.add_argument("--window", type=int, default=15, help="Basic's SN window")
    run.add_argument(
        "--threshold", type=float, default=None, help="Basic's popcorn threshold"
    )
    run.add_argument("--points", type=int, default=10, help="curve sample points")
    _add_backend_options(run)
    _add_fault_options(run)
    _add_observability_options(run)

    compare = sub.add_parser("compare", help="ours vs the Basic baseline")
    _add_dataset_options(compare)
    compare.add_argument("--machines", type=int, default=10)
    compare.add_argument("--window", type=int, default=15)
    compare.add_argument(
        "--threshold",
        type=float,
        action="append",
        dest="thresholds",
        help="popcorn threshold (repeatable); Basic F always included",
    )
    compare.add_argument("--points", type=int, default=10)
    compare.add_argument("--chart", action="store_true", help="ASCII chart output")
    _add_backend_options(compare)
    _add_fault_options(compare)
    _add_observability_options(compare)

    profile = sub.add_parser(
        "profile", help="profile a dataset's attributes and blocking keys"
    )
    _add_dataset_options(profile)

    serve = sub.add_parser(
        "serve",
        help="stream a JSONL entity file through the incremental resolver",
    )
    serve.add_argument("--family", choices=_FAMILIES, default="citeseer")
    serve.add_argument(
        "--input", default="-",
        help="JSONL entity stream, one {id, attrs...} object per line "
        "('-' reads stdin; `generate --out x.jsonl` writes this format)",
    )
    serve.add_argument(
        "--batch-size", type=int, default=200,
        help="entities per submitted batch (a `batch` field in the input "
        "overrides this grouping)",
    )
    serve.add_argument("--machines", type=int, default=4)
    serve.add_argument(
        "--min-family-matches", type=int, default=2,
        help="key families that must agree before a pair is compared "
        "(clamped to the scheme's family count)",
    )
    serve.add_argument(
        "--snapshot-out", metavar="PATH", default=None,
        help="write the final service snapshot as JSON (feed to `submit`)",
    )
    serve.add_argument(
        "--print-pairs", action="store_true",
        help="print every newly found pair as it is discovered",
    )
    _add_backend_options(serve)
    _add_fault_options(serve)
    _add_observability_options(serve)

    submit = sub.add_parser(
        "submit",
        help="submit one more batch to a saved resolver-service snapshot",
    )
    submit.add_argument("--family", choices=_FAMILIES, default="citeseer")
    submit.add_argument(
        "--snapshot", required=True, metavar="PATH",
        help="service snapshot written by `serve --snapshot-out` (or a "
        "previous `submit`)",
    )
    submit.add_argument("--input", default="-", help="JSONL batch to submit")
    submit.add_argument("--machines", type=int, default=4)
    submit.add_argument("--min-family-matches", type=int, default=2)
    submit.add_argument(
        "--snapshot-out", metavar="PATH", default=None,
        help="where to write the updated snapshot (default: overwrite "
        "--snapshot)",
    )
    submit.add_argument("--print-pairs", action="store_true")
    _add_backend_options(submit)
    _add_fault_options(submit)
    _add_observability_options(submit)

    sched = sub.add_parser(
        "sched",
        help="multi-tenant scheduler demo: Poisson arrivals of resolver "
        "batches competing for shared slots",
    )
    sched.add_argument("--family", choices=_FAMILIES, default="citeseer")
    sched.add_argument("--size", type=int, default=240, help="total entities")
    sched.add_argument("--seed", type=int, default=7)
    sched.add_argument("--jobs", type=int, default=9, help="arrivals to draw")
    sched.add_argument(
        "--rate", type=float, default=0.02,
        help="Poisson arrival rate (jobs per virtual time unit)",
    )
    sched.add_argument("--machines", type=int, default=4)
    sched.add_argument("--policy", choices=("fair", "fifo"), default="fair")
    sched.add_argument(
        "--tenants", type=int, default=3,
        help="number of tenants (weights 1..N, one service each)",
    )
    sched.add_argument(
        "--interactive-fraction", type=float, default=0.3,
        help="probability an arrival lands in the interactive lane",
    )
    sched.add_argument(
        "--max-queued", type=int, default=None,
        help="per-tenant cap on unfinished submissions (admission control)",
    )
    sched.add_argument(
        "--max-active", type=int, default=None,
        help="cluster-wide cap on concurrently running jobs",
    )
    sched.add_argument(
        "--report-out", metavar="PATH", default=None,
        help="write the scheduler report (outcomes, tenants, percentiles) "
        "as JSON",
    )
    _add_observability_options(sched)

    calibrate = sub.add_parser(
        "calibrate",
        help="fit the cost model's virtual-unit prices to real wall clock",
    )
    calibrate.add_argument("--family", choices=_FAMILIES, default="citeseer")
    calibrate.add_argument("--size", type=int, default=800)
    calibrate.add_argument("--seed", type=int, default=7)
    calibrate.add_argument("--machines", type=int, default=4)
    calibrate.add_argument(
        "--repeats", type=int, default=1,
        help="run the workload this many times and fit over all tasks "
        "(more samples, steadier fit)",
    )
    calibrate.add_argument(
        "--out", metavar="PATH", default=None,
        help="write the calibration report (fitted constants, error band) "
        "as JSON",
    )
    _add_backend_options(calibrate)
    calibrate.set_defaults(backend="process")
    return parser


def _add_dataset_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--family", choices=_FAMILIES, default="citeseer")
    parser.add_argument("--size", type=int, default=2000)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--dataset", default=None, help="CSV written by `generate`")


def _add_backend_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backend",
        choices=BACKENDS,
        default="serial",
        help="execution backend for the simulator's tasks (virtual-time "
        "results are identical; `process` fans tasks out to worker "
        "processes for wall-clock speed)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for --backend process (default: CPU count)",
    )
    parser.add_argument(
        "--balance",
        choices=BALANCE_STRATEGIES,
        default="slack",
        help="load-balancing post-pass over the progressive schedule: "
        "`slack` (paper baseline), `blocksplit` (shard oversized root "
        "blocks, LPT placement), `pairrange` (global PairRange: cut the "
        "whole estimated pair stream into equal contiguous ranges, "
        "splitting blocks where cuts land), `pairrange-tree` (deprecated "
        "tree-granularity variant); resolved output is identical across "
        "strategies",
    )
    parser.add_argument(
        "--batch-pairs",
        type=int,
        default=None,
        help="pairs decided per batched similarity-kernel call during "
        "block resolution (default 64; 1 forces the scalar per-pair "
        "path; decisions are bit-identical at any width)",
    )
    parser.add_argument(
        "--metablock",
        choices=METABLOCK_MODES,
        default="off",
        help="meta-blocking pre-pass between blocking and scheduling: "
        "`off` (default), `bf` (block filtering: each entity keeps its "
        "--metablock-ratio smallest level-1 blocks), `wnp` (weighted "
        "node pruning: drop candidate pairs below both endpoints' mean "
        "edge weight)",
    )
    parser.add_argument(
        "--metablock-ratio",
        type=float,
        default=None,
        metavar="R",
        help="block-filtering retention ratio in (0, 1] for --metablock "
        "bf (default 0.8; note ceil(R*k) rounds up, so 0.8 keeps all 3 "
        "blocks of a 3-family scheme — use 0.5 for real pruning there)",
    )


def _add_fault_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        help="seed for the deterministic fault plan (default: 0)",
    )
    parser.add_argument(
        "--fault-rate",
        type=float,
        default=0.0,
        help="probability that any task attempt crashes partway and is "
        "retried (0 disables fault injection)",
    )
    parser.add_argument(
        "--straggler-rate",
        type=float,
        default=0.0,
        help="probability that a slot is a straggler",
    )
    parser.add_argument(
        "--straggler-factor",
        type=float,
        default=3.0,
        help="cost multiplier of a straggler slot (default: 3)",
    )
    parser.add_argument(
        "--speculative",
        action="store_true",
        help="enable Hadoop-style speculative execution (backup attempts "
        "for straggling tasks; first finisher wins)",
    )


def _fault_plan(args: argparse.Namespace) -> Optional[FaultPlan]:
    """A FaultPlan from the CLI flags, or None when nothing was requested.

    ``--fault-rate 0`` with no other fault flag must reproduce today's
    timelines exactly, so the default returns ``None`` (no fault machinery
    attached at all); any active flag builds a seeded plan.
    """
    active = args.fault_rate > 0 or args.straggler_rate > 0 or args.speculative
    if not active:
        return None
    return FaultPlan(
        seed=args.fault_seed,
        fault_rate=args.fault_rate,
        straggler_rate=args.straggler_rate,
        straggler_factor=args.straggler_factor,
        retry=RetryPolicy(),
        speculation=SpeculationConfig(enabled=args.speculative),
    )


def _add_observability_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="write a trace of the run(s): Chrome trace_event JSON "
        "(open in chrome://tracing or ui.perfetto.dev), or a JSONL "
        "event log when PATH ends in .jsonl",
    )
    parser.add_argument(
        "--metrics",
        metavar="PATH",
        default=None,
        help="write per-phase counter snapshots (engine.*/driver.*/"
        "matcher.*) as JSON",
    )
    parser.add_argument(
        "--skew",
        action="store_true",
        help="print a per-task Gantt/skew summary of the trace "
        "(implies tracing)",
    )
    parser.add_argument(
        "--perf-report",
        action="store_true",
        help="print a per-phase runtime cost table (wall clock, task "
        "fan-out, work-stealing pulls, shared-memory vs descriptor "
        "bytes, payload wire bytes vs plain pickle, pool forks; implies "
        "metrics collection)",
    )


def _observers(args: argparse.Namespace):
    """(tracer, metrics) from the CLI flags; None when not requested."""
    want_trace = args.trace is not None or args.skew
    tracer = Tracer() if want_trace else None
    want_metrics = args.metrics is not None or args.perf_report
    metrics = MetricsRegistry() if want_metrics else None
    return tracer, metrics


def _write_observations(args: argparse.Namespace, tracer, metrics) -> None:
    if tracer is not None and args.trace is not None:
        if args.trace.endswith(".jsonl"):
            write_trace_jsonl(tracer, args.trace)
        else:
            write_chrome_trace(tracer, args.trace)
        print(f"trace written to {args.trace}", file=sys.stderr)
    if metrics is not None and args.metrics is not None:
        metrics.write_json(args.metrics)
        print(f"metrics written to {args.metrics}", file=sys.stderr)
    if tracer is not None and args.skew:
        print()
        print(format_trace_summary(tracer))
    if metrics is not None and args.perf_report:
        print()
        print(format_perf_report(metrics))


_MAKERS = {
    "citeseer": make_citeseer,
    "books": make_books,
    "people": make_people,
    "skewed": make_skewed,
    "linkage": make_linkage,
}
_CONFIGS = {
    "citeseer": citeseer_config,
    "books": books_config,
    "people": people_config,
    "skewed": skewed_config,
    "linkage": linkage_config,
}
_SCHEMES = {
    "citeseer": citeseer_scheme,
    "books": books_scheme,
    "people": people_scheme,
    "skewed": lambda: skewed_config().scheme,
    "linkage": linkage_scheme,
}


def _load_dataset(args: argparse.Namespace) -> Dataset:
    if args.dataset is not None:
        return Dataset.from_csv(args.dataset, name=args.family)
    return _MAKERS[args.family](args.size, seed=args.seed)


def _progressive_config(family: str, args: Optional[argparse.Namespace] = None):
    overrides = {}
    if args is not None and getattr(args, "metablock_ratio", None) is not None:
        overrides["metablock_ratio"] = args.metablock_ratio
    return _CONFIGS[family](**overrides)


def _basic_config(family: str, window: int, threshold: Optional[float]) -> BasicConfig:
    config = _CONFIGS[family]()
    mechanism = SortedNeighborHint() if family == "citeseer" else PSNM()
    return BasicConfig(
        scheme=_SCHEMES[family](),
        matcher=config.matcher,
        mechanism=mechanism,
        window=window,
        popcorn_threshold=threshold,
    )


def _command_generate(args: argparse.Namespace) -> int:
    dataset = _MAKERS[args.family](args.size, seed=args.seed)
    if args.out.endswith(".jsonl"):
        with open(args.out, "w", encoding="utf-8") as handle:
            for entity in dataset.entities:
                row = {"id": entity.id, **entity.attrs}
                if entity.source is not None:
                    row["source"] = entity.source
                handle.write(json.dumps(row, sort_keys=True) + "\n")
    else:
        dataset.to_csv(args.out)
    print(
        f"wrote {len(dataset)} {args.family} entities "
        f"({dataset.num_true_pairs} duplicate pairs) to {args.out}"
    )
    return 0


def _run_spec(args: argparse.Namespace, config, **overrides) -> RunSpec:
    """A RunSpec wired from the shared CLI options."""
    batch_pairs = getattr(args, "batch_pairs", None)
    if batch_pairs is not None:
        set_default_batch_pairs(batch_pairs)
    backend = getattr(args, "backend", None)
    executor = None
    if backend == "process" and getattr(args, "perf_report", False):
        # The perf report wants the plain-pickle baseline next to the wire
        # bytes; that costs an extra pickle pass per task, so only the
        # explicit --perf-report path turns it on.
        executor = make_executor(
            backend, getattr(args, "workers", None), profile_wire=True
        )
    metablock = getattr(args, "metablock", "off")
    if isinstance(config, BasicConfig):
        # The baseline has no schedule to prune; RunSpec.validate rejects
        # the combination, so the flag silently stays off for Basic runs.
        metablock = "off"
    return RunSpec(
        dataset=overrides.pop("dataset"),
        config=config,
        machines=args.machines,
        balance=getattr(args, "balance", "slack"),
        backend=backend,
        workers=getattr(args, "workers", None),
        executor=executor,
        faults=_fault_plan(args) if hasattr(args, "fault_rate") else None,
        metablock=metablock,
        **overrides,
    )


def _command_run(args: argparse.Namespace) -> int:
    dataset = _load_dataset(args)
    tracer, metrics = _observers(args)
    if args.approach == "basic":
        config = _basic_config(args.family, args.window, args.threshold)
        spec = _run_spec(args, config, dataset=dataset, tracer=tracer, metrics=metrics)
    else:
        spec = _run_spec(
            args,
            _progressive_config(args.family, args),
            dataset=dataset,
            strategy=args.approach,
            tracer=tracer,
            metrics=metrics,
        )
    run = ExperimentRun(spec).run()
    times = sample_times(run.total_time, points=args.points)
    print(format_curves([run], times, title=f"{run.label} on {dataset.name}"))
    print()
    print(format_final_summary([run]))
    faults = format_fault_summary([run])
    if faults:
        print()
        print(faults)
    plan = getattr(run.result, "balance", None)
    if plan is not None and (args.balance != "slack" or args.skew):
        print()
        print(format_balance_summary(plan))
    mb_plan = getattr(run.result, "metablock", None)
    if mb_plan is not None:
        print()
        print(format_metablock_summary(mb_plan))
    _write_observations(args, tracer, metrics)
    return 0


def _command_compare(args: argparse.Namespace) -> int:
    dataset = _load_dataset(args)
    tracer, metrics = _observers(args)
    specs = [
        _run_spec(
            args,
            _progressive_config(args.family, args),
            dataset=dataset,
            label="ours",
            tracer=tracer,
            metrics=metrics,
        )
    ]
    thresholds: List[Optional[float]] = [None] + list(args.thresholds or [])
    for threshold in thresholds:
        config = _basic_config(args.family, args.window, threshold)
        specs.append(
            _run_spec(args, config, dataset=dataset, tracer=tracer, metrics=metrics)
        )
    runs = [ExperimentRun(spec).run() for spec in specs]
    horizon = runs[0].total_time
    if args.chart:
        print(ascii_chart(runs, horizon=horizon, title=f"recall vs time — {dataset.name}"))
    else:
        print(
            format_curves(
                runs, sample_times(horizon, points=args.points),
                title=f"recall vs time — {dataset.name}",
            )
        )
    print()
    print(format_final_summary(runs))
    faults = format_fault_summary(runs)
    if faults:
        print()
        print(faults)
    _write_observations(args, tracer, metrics)
    return 0


def _read_jsonl_entities(path: str):
    """[(explicit_batch_or_None, Entity)] from a JSONL stream ('-' = stdin)."""
    handle = sys.stdin if path == "-" else open(path, "r", encoding="utf-8")
    rows = []
    try:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as exc:
                raise SystemExit(f"{path}:{lineno}: not valid JSON: {exc}")
            if not isinstance(obj, dict) or "id" not in obj:
                raise SystemExit(
                    f"{path}:{lineno}: each line must be an object with an "
                    "'id' field (and attribute fields, or a nested 'attrs')"
                )
            batch = obj.pop("batch", None)
            source = obj.pop("source", None)
            attrs = obj.pop("attrs", None)
            entity_id = int(obj.pop("id"))
            if attrs is None:
                attrs = obj
            rows.append(
                (
                    batch,
                    Entity(
                        entity_id,
                        {k: str(v) for k, v in attrs.items()},
                        source=None if source is None else str(source),
                    ),
                )
            )
    finally:
        if handle is not sys.stdin:
            handle.close()
    return rows


def _batched_entities(rows, batch_size: int):
    """Group parsed JSONL rows into submit batches.

    Rows carrying an explicit ``batch`` field are grouped by it (ascending);
    otherwise the stream is chunked every ``batch_size`` entities.
    """
    if any(batch is not None for batch, _ in rows):
        by_batch = {}
        for batch, entity in rows:
            by_batch.setdefault(0 if batch is None else int(batch), []).append(entity)
        return [by_batch[key] for key in sorted(by_batch)]
    entities = [entity for _, entity in rows]
    if batch_size < 1:
        raise SystemExit(f"--batch-size must be >= 1, got {batch_size}")
    return [
        entities[start : start + batch_size]
        for start in range(0, len(entities), batch_size)
    ]


def _build_service(args: argparse.Namespace, tracer, metrics):
    from .service import ResolverService

    return ResolverService(
        _CONFIGS[args.family](),
        machines=args.machines,
        balance=args.balance,
        min_family_matches=args.min_family_matches,
        batch_pairs=args.batch_pairs,
        backend=args.backend,
        workers=args.workers,
        tracer=tracer,
        metrics=metrics,
        faults=_fault_plan(args),
    )


def _print_receipt(receipt, print_pairs: bool) -> None:
    print(
        f"batch {receipt.batch}: +{receipt.added} entities, "
        f"{receipt.affected_blocks} affected blocks, "
        f"{receipt.comparisons} comparisons, "
        f"{receipt.duplicates} new pairs, "
        f"t=[{receipt.start_time:.1f}, {receipt.end_time:.1f}]"
    )
    if print_pairs:
        for pair in receipt.pairs:
            print(f"  pair {pair[0]} = {pair[1]}")


def _print_service_summary(service) -> None:
    stats = service.stats()
    print(
        f"service: {stats['entities']} entities in {stats['batches']} batches, "
        f"{stats['blocks']} blocks, {stats['comparisons']} comparisons, "
        f"{stats['found_pairs']} pairs in {stats['clusters']} clusters, "
        f"virtual time {stats['virtual_time']:.1f}"
    )


def _write_service_snapshot(service, path: Optional[str]) -> None:
    if path is None:
        return
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(service.snapshot(), handle)
    print(f"snapshot written to {path}", file=sys.stderr)


def _command_serve(args: argparse.Namespace) -> int:
    tracer, metrics = _observers(args)
    service = _build_service(args, tracer, metrics)
    batches = _batched_entities(_read_jsonl_entities(args.input), args.batch_size)
    for batch in batches:
        receipt = service.submit(batch)
        _print_receipt(receipt, args.print_pairs)
    _print_service_summary(service)
    _write_service_snapshot(service, args.snapshot_out)
    _write_observations(args, tracer, metrics)
    return 0


def _command_submit(args: argparse.Namespace) -> int:
    from .service import ResolverService

    tracer, metrics = _observers(args)
    with open(args.snapshot, "r", encoding="utf-8") as handle:
        snapshot = json.load(handle)
    service = ResolverService.restore(
        snapshot,
        _CONFIGS[args.family](),
        machines=args.machines,
        balance=args.balance,
        min_family_matches=args.min_family_matches,
        batch_pairs=args.batch_pairs,
        backend=args.backend,
        workers=args.workers,
        tracer=tracer,
        metrics=metrics,
        faults=_fault_plan(args),
    )
    entities = [entity for _, entity in _read_jsonl_entities(args.input)]
    receipt = service.submit(entities)
    _print_receipt(receipt, args.print_pairs)
    _print_service_summary(service)
    _write_service_snapshot(
        service, args.snapshot_out if args.snapshot_out else args.snapshot
    )
    _write_observations(args, tracer, metrics)
    return 0


def _command_profile(args: argparse.Namespace) -> int:
    dataset = _load_dataset(args)
    profile = profile_dataset(dataset)
    print(format_profile(profile))
    order = suggest_blocking_order(profile)
    if order:
        print()
        print("suggested dominance order: " + " > ".join(order))
    return 0


def _command_calibrate(args: argparse.Namespace) -> int:
    """Fit the cost model's virtual-unit prices to this host's wall clock.

    Runs the progressive approach on a synthetic workload (the process
    backend by default, so tasks execute in real worker processes), pools
    every task's recorded wall time and charge profile, and fits
    seconds-per-virtual-unit prices by least squares.  The printed report
    includes the fitted CostModel ratios this machine implies and the
    median-APE error band; nothing feeds back into virtual time.
    """
    from .core import calibration_report, fit_cost_model, task_samples

    dataset = _MAKERS[args.family](args.size, seed=args.seed)
    config = _CONFIGS[args.family]()
    repeats = max(1, args.repeats)
    samples = []
    for _ in range(repeats):
        spec = _run_spec(args, config, dataset=dataset)
        run = ExperimentRun(spec).run()
        samples.extend(task_samples([run.result.job1, run.result.job2]))
    try:
        fit = fit_cost_model(samples)
    except ValueError as exc:
        print(f"calibration failed: {exc}", file=sys.stderr)
        return 2
    workers = args.workers or os.cpu_count() or 1
    report = calibration_report(
        fit,
        workload={
            "family": args.family,
            "size": args.size,
            "seed": args.seed,
            "machines": args.machines,
            "repeats": repeats,
        },
        workers=workers if args.backend == "process" else 1,
        backend=args.backend,
    )
    print(format_calibration_report(report))
    if args.out is not None:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
        print(f"calibration report written to {args.out}", file=sys.stderr)
    return 0


def _command_sched(args: argparse.Namespace) -> int:
    """Drive the multi-tenant scheduler over a seeded Poisson trace.

    Builds one :class:`~repro.service.ResolverService` per tenant
    (weights 1..N), slices the synthetic dataset into one batch per
    arrival, and submits each batch at its drawn arrival time and lane.
    Everything is virtual time, so the same seed reproduces the same
    report on every machine and backend.
    """
    from .service import ResolverService

    if args.jobs <= 0:
        print("--jobs must be positive", file=sys.stderr)
        return 2
    dataset = _MAKERS[args.family](args.size, seed=args.seed)
    config = _CONFIGS[args.family]()
    tracer, metrics = _observers(args)

    tenants = [f"tenant-{i}" for i in range(args.tenants)]
    scheduler = JobScheduler(
        machines=args.machines,
        policy=args.policy,
        admission=AdmissionPolicy(
            max_queued=args.max_queued, max_active=args.max_active
        ),
        tracer=tracer,
        metrics=metrics,
    )
    services = {}
    for position, tenant in enumerate(tenants):
        scheduler.add_tenant(tenant, weight=float(position + 1))
        services[tenant] = ResolverService(
            config,
            machines=args.machines,
            scheduler=scheduler,
            tenant=tenant,
            label=tenant,
        )
    trace = poisson_arrivals(
        seed=args.seed,
        rate=args.rate,
        count=args.jobs,
        tenants=tenants,
        interactive_fraction=args.interactive_fraction,
    )
    chunk = max(1, len(dataset) // args.jobs)
    for arrival in trace:
        batch = dataset.entities[arrival.index * chunk:(arrival.index + 1) * chunk]
        if not batch:
            break
        scheduler.submit_batch(
            services[arrival.tenant],
            batch,
            arrival=arrival.time,
            lane=arrival.lane,
            label=f"job-{arrival.index}",
        )
    report = scheduler.run()
    print(format_sched_report(report))
    total_pairs = sum(len(s.found_pairs) for s in services.values())
    print(f"\n{total_pairs} pairs found across {len(services)} tenant services")
    if args.report_out is not None:
        with open(args.report_out, "w", encoding="utf-8") as fh:
            json.dump(report.to_dict(), fh, indent=2, sort_keys=True)
        print(f"report written to {args.report_out}", file=sys.stderr)
    _write_observations(args, tracer, metrics)
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "generate":
        return _command_generate(args)
    if args.command == "run":
        return _command_run(args)
    if args.command == "profile":
        return _command_profile(args)
    if args.command == "serve":
        return _command_serve(args)
    if args.command == "submit":
        return _command_submit(args)
    if args.command == "sched":
        return _command_sched(args)
    if args.command == "calibrate":
        return _command_calibrate(args)
    return _command_compare(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())


__all__ = ["main"]
