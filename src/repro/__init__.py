"""repro — Parallel Progressive Entity Resolution using MapReduce.

A full reproduction of Altowim & Mehrotra, *"Parallel Progressive Approach
to Entity Resolution Using MapReduce"* (ICDE 2017): the two-job progressive
ER pipeline, its duplicate/cost estimation and schedule generation,
redundancy-free resolution, the Basic/NoSplit/LPT baselines, and a
deterministic MapReduce simulator with virtual-time cost accounting.

Quick start::

    from repro import make_citeseer, citeseer_config, ExperimentRun, RunSpec

    dataset = make_citeseer(4000, seed=7)
    run = ExperimentRun(RunSpec(dataset, citeseer_config(), machines=10)).run()
    print(run.final_recall, run.curve.recall_at(run.total_time / 4))
"""

from .baselines import BasicConfig, BasicER, BasicResult, run_lpt, run_nosplit, run_ours
from .blocking import (
    Block,
    BlockingFunction,
    BlockingScheme,
    Forest,
    books_scheme,
    build_forests,
    citeseer_scheme,
    prefix_function,
)
from .core import (
    ApproachConfig,
    LevelPolicy,
    ProgressiveER,
    ProgressiveResult,
    ProgressiveSchedule,
    books_config,
    citeseer_config,
    generate_schedule,
)
from .data import (
    Dataset,
    Entity,
    make_books,
    make_citeseer,
    pair_key,
    pairs_count,
)
from .evaluation import (
    CurveRun,
    ExperimentRun,
    RecallCurve,
    RunResult,
    RunSpec,
    quality,
    recall_curve,
    recall_speedup,
    transitive_closure,
)
from .scheduling import (
    AdmissionPolicy,
    AdmissionReceipt,
    JobScheduler,
    SchedulerReport,
    poisson_arrivals,
)
from .service import BatchReceipt, PairEvent, ResolverService, ResolverSession
from .observability import MetricsRegistry, Tracer, write_chrome_trace
from .mapreduce import Cluster, CostModel, MapReduceJob
from .mechanisms import PSNM, FullResolution, PopcornCondition, SortedNeighborHint
from .similarity import (
    AttributeRule,
    WeightedMatcher,
    books_matcher,
    citeseer_matcher,
    edit_similarity,
    levenshtein,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # data
    "Entity",
    "Dataset",
    "make_citeseer",
    "make_books",
    "pair_key",
    "pairs_count",
    # similarity
    "levenshtein",
    "edit_similarity",
    "AttributeRule",
    "WeightedMatcher",
    "citeseer_matcher",
    "books_matcher",
    # blocking
    "Block",
    "Forest",
    "BlockingFunction",
    "BlockingScheme",
    "prefix_function",
    "citeseer_scheme",
    "books_scheme",
    "build_forests",
    # mechanisms
    "SortedNeighborHint",
    "PSNM",
    "FullResolution",
    "PopcornCondition",
    # mapreduce
    "Cluster",
    "CostModel",
    "MapReduceJob",
    # core
    "ApproachConfig",
    "LevelPolicy",
    "citeseer_config",
    "books_config",
    "ProgressiveER",
    "ProgressiveResult",
    "ProgressiveSchedule",
    "generate_schedule",
    # baselines
    "BasicConfig",
    "BasicER",
    "BasicResult",
    "run_ours",
    "run_nosplit",
    "run_lpt",
    # evaluation
    "RunSpec",
    "RunResult",
    "ExperimentRun",
    "CurveRun",
    "RecallCurve",
    "recall_curve",
    "quality",
    "recall_speedup",
    "transitive_closure",
    # service
    "ResolverService",
    "ResolverSession",
    "BatchReceipt",
    "PairEvent",
    # scheduling
    "JobScheduler",
    "AdmissionPolicy",
    "AdmissionReceipt",
    "SchedulerReport",
    "poisson_arrivals",
    # observability
    "Tracer",
    "MetricsRegistry",
    "write_chrome_trace",
]
