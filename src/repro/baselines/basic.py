"""The Basic approach (paper Section II-C / Figure 2).

A single MapReduce job: the map function emits each entity once per main
blocking function, keyed by (function id, blocking key) — the function id
keeps equal key values of different functions apart (footnote 3).  The
default hash partitioner spreads blocks over the reduce tasks, and each
reduce call resolves one block with mechanism M until the popcorn stopping
condition fires (or to completion for "Basic F").

Redundant resolution of shared pairs is avoided with the strategy of
[Kolb et al., DanaC '13]: a pair is resolved only in the common block with
the smallest blocking key value.

This baseline has exactly the four limitations Section II-C lists — no
duplicate-aware scheduling, single-visit blocks with a hard-to-tune
threshold, no large-block handling, and earliest-key-biased shared-pair
placement — which is what Figures 8 and 10 measure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..blocking.functions import BlockingScheme
from ..data.dataset import Dataset
from ..data.entity import Entity, Pair, pair_key
from ..mapreduce.engine import Cluster
from ..mapreduce.job import MapReduceJob, Mapper, Reducer, TaskContext
from ..mapreduce.types import Event, JobResult
from ..mechanisms.base import Mechanism, block_sort_key, resolve_block
from ..mechanisms.popcorn import PopcornCondition
from ..similarity.matchers import WeightedMatcher

#: Map key: (family index, blocking key value); map value: the entity plus
#: its main keys under every family (needed for the [14] redundancy rule).
BasicKey = Tuple[int, str]
BasicValue = Tuple[Entity, Tuple[Optional[str], ...]]


@dataclass
class BasicConfig:
    """Configuration of the Basic baseline.

    Attributes:
        scheme: blocking scheme; only the main (level-1) functions are used
            — Basic has no progressive blocking.
        matcher: the resolve/match function.
        mechanism: progressive mechanism M applied per block.
        window: SN window size ``w`` (the paper compares 5 and 15).
        popcorn_threshold: popcorn stopping threshold; ``None`` disables
            the stopping condition entirely ("Basic F").
        alpha: incremental-output flush period.
    """

    scheme: BlockingScheme
    matcher: WeightedMatcher
    mechanism: Mechanism
    window: int = 15
    popcorn_threshold: Optional[float] = None
    alpha: float = 200.0

    def sort_attribute(self, family: str) -> str:
        """Attribute blocks of ``family`` are sorted on."""
        description = self.scheme.main_function(family).description
        return description.split(".", 1)[0]


class BasicMapper(Mapper):
    """Emit each entity once per main blocking function."""

    def __init__(self, scheme: BlockingScheme) -> None:
        self._scheme = scheme

    def map(self, record: Entity, context: TaskContext) -> None:
        keys: List[Optional[str]] = []
        for family in self._scheme.family_order:
            keys.append(self._scheme.main_function(family).key_of(record))
        signature = tuple(keys)
        for position, key in enumerate(keys):
            if key is not None:
                context.emit((position, key), (record, signature))


class BasicReducer(Reducer):
    """Resolve each block with M under the popcorn scheme, applying the
    smallest-key redundancy rule of [14]."""

    def __init__(self, config: BasicConfig) -> None:
        self._config = config

    def reduce(
        self, key: BasicKey, values: Sequence[BasicValue], context: TaskContext
    ) -> None:
        if len(values) < 2:
            return
        position, block_key = key
        config = self._config
        family = config.scheme.family_order[position]
        entities = [entity for entity, _ in values]
        signatures = {entity.id: sig for entity, sig in values}
        sort_attribute = config.sort_attribute(family)

        def ok_to_resolve(e1: Entity, e2: Entity) -> bool:
            return _is_smallest_common_block(
                signatures[e1.id], signatures[e2.id], position
            )

        found = 0

        def on_duplicate(e1: Entity, e2: Entity) -> None:
            nonlocal found
            found += 1
            context.counters.increment("driver", "duplicates")
            pair = pair_key(e1.id, e2.id)
            context.record_event("duplicate", pair)
            context.write(pair)

        trace = context.tracing
        span_start = context.clock.now if trace else 0.0
        stop = (
            PopcornCondition(config.popcorn_threshold)
            if config.popcorn_threshold is not None
            else None
        )
        resolve_block(
            entities,
            config.mechanism,
            window=config.window,
            sort_key=lambda e: block_sort_key(e, sort_attribute),
            matcher=config.matcher,
            cost_model=context.cost_model,
            charge=context.charge,
            on_duplicate=on_duplicate,
            should_resolve=ok_to_resolve,
            stop=stop,
        )
        context.counters.increment("driver", "blocks_resolved")
        if trace:
            context.record_span(
                f"resolve:{family}1:{block_key}", "block",
                span_start, context.clock.now,
                block=f"{family}1:{block_key}",
                entities=len(entities), duplicates=found,
            )


def _is_smallest_common_block(
    sig1: Tuple[Optional[str], ...],
    sig2: Tuple[Optional[str], ...],
    position: int,
) -> bool:
    """[14]'s rule: resolve the pair only in the common block whose
    (key value, function position) is smallest."""
    best: Optional[Tuple[str, int]] = None
    for index, (k1, k2) in enumerate(zip(sig1, sig2)):
        if k1 is None or k1 != k2:
            continue
        candidate = (k1, index)
        if best is None or candidate < best:
            best = candidate
    return best is not None and best[1] == position and best[0] == sig1[position]


@dataclass
class BasicResult:
    """Outcome of one Basic run."""

    dataset: Dataset
    job: JobResult
    duplicate_events: List[Event]

    @property
    def total_time(self) -> float:
        return self.job.end_time

    @cached_property
    def found_pairs(self) -> Set[Pair]:
        """Distinct duplicate pairs (computed once; the event list is never
        mutated after construction)."""
        return {event.payload for event in self.duplicate_events}


class BasicER:
    """Driver for the Basic baseline (one MapReduce job)."""

    def __init__(self, config: BasicConfig, cluster: Cluster) -> None:
        self.config = config
        self.cluster = cluster

    def run(self, dataset: Dataset) -> BasicResult:
        """Run the single-job baseline on ``dataset``."""
        job = MapReduceJob(
            mapper_factory=lambda: BasicMapper(self.config.scheme),
            reducer_factory=lambda: BasicReducer(self.config),
            alpha=self.config.alpha,
            name="basic-er",
        )
        result = self.cluster.run_job(job, dataset.entities)
        events = _first_discoveries(result.events)
        return BasicResult(dataset=dataset, job=result, duplicate_events=events)


def _first_discoveries(events: Sequence[Event]) -> List[Event]:
    """First occurrence per duplicate pair, in time order."""
    seen: Set[Pair] = set()
    kept: List[Event] = []
    for event in sorted(
        (e for e in events if e.kind == "duplicate"), key=lambda e: e.time
    ):
        if event.payload not in seen:
            seen.add(event.payload)
            kept.append(event)
    return kept


__all__ = ["BasicConfig", "BasicER", "BasicResult", "BasicMapper", "BasicReducer"]
