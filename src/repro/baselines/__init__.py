"""Baselines: the Basic single-job approach and the NoSplit/LPT tree
schedulers the paper compares against."""

from .basic import BasicConfig, BasicER, BasicResult
from .mrsn import MrsnConfig, MrsnResult, MultiPassMRSN
from .schedulers import run_lpt, run_nosplit, run_ours

__all__ = [
    "BasicConfig",
    "BasicER",
    "BasicResult",
    "MrsnConfig",
    "MultiPassMRSN",
    "MrsnResult",
    "run_ours",
    "run_nosplit",
    "run_lpt",
]
