"""Alternative tree schedulers (paper Section VI-B2).

Both baselines share our block schedules (utility order per task) and the
whole two-job pipeline; they differ only in the tree schedule:

* **NoSplit** — our partitioning without the tree-split mechanism, so an
  overflowed high-duplicate tree monopolizes a single reduce task.
* **LPT** — Longest Processing Time [Pinedo]: balances *total* cost across
  tasks, the classic traditional-ER objective, with no regard for when the
  duplicates arrive.
"""

from __future__ import annotations

from ..data.dataset import Dataset
from ..mapreduce.engine import Cluster
from ..core.config import ApproachConfig
from ..core.driver import ProgressiveER, ProgressiveResult


def run_ours(
    config: ApproachConfig, cluster: Cluster, dataset: Dataset, *, seed: int = 0
) -> ProgressiveResult:
    """Our full approach (split + slack partitioning)."""
    return ProgressiveER(config, cluster, strategy="ours", seed=seed).run(dataset)


def run_nosplit(
    config: ApproachConfig, cluster: Cluster, dataset: Dataset, *, seed: int = 0
) -> ProgressiveResult:
    """NoSplit: our tree scheduling without the split mechanism."""
    return ProgressiveER(config, cluster, strategy="nosplit", seed=seed).run(dataset)


def run_lpt(
    config: ApproachConfig, cluster: Cluster, dataset: Dataset, *, seed: int = 0
) -> ProgressiveResult:
    """LPT: load-balance total tree cost across the reduce tasks."""
    return ProgressiveER(config, cluster, strategy="lpt", seed=seed).run(dataset)


__all__ = ["run_ours", "run_nosplit", "run_lpt"]
