"""Multi-pass Sorted Neighborhood with MapReduce (related-work baseline).

The paper's related work (Section VII) cites [Kolb, Thor & Rahm '12]:
"Multi-pass sorted neighborhood blocking with MapReduce" — the standard
way to parallelize SN before progressive ER existed.  One MapReduce job
per blocking pass:

* the **map** phase keys every entity by the pass's sorting key;
* a **range partitioner** (boundaries pre-sampled from the dataset, as in
  the original's analysis phase) sends contiguous key ranges to reduce
  tasks, so the global sorted order is the concatenation of the tasks'
  local orders;
* each entity within ``window - 1`` positions of a partition boundary is
  **replicated** to the succeeding partition (the RepSN scheme), so no
  cross-boundary pair is missed;
* each reduce task slides the SN window over its sorted range, skipping
  pairs of two replicas (they belong to the preceding partition).

Passes run sequentially (job p + 1 starts when job p ends).  As the paper
notes, such algorithms "implement a fixed ER algorithm and need to run to
completion before they can produce results" — there is no prioritization
whatsoever; this baseline exists to quantify what progressiveness adds
over plain parallel SN.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..blocking.functions import BlockingScheme
from ..data.dataset import Dataset
from ..data.entity import Entity, Pair, pair_key
from ..mapreduce.engine import Cluster
from ..mapreduce.job import MapReduceJob, Mapper, Partitioner, Reducer, TaskContext
from ..mapreduce.types import Event, JobResult
from ..mechanisms.base import block_sort_key
from ..similarity.matchers import WeightedMatcher

#: Map key: (partition index, sort key, replica flag); the replica flag
#: sorts replicas *before* the partition's own records so they prepend.
MrsnKey = Tuple[int, Tuple[str, str], bool]


@dataclass
class MrsnConfig:
    """Configuration of the multi-pass MR-SN baseline.

    Attributes:
        scheme: blocking scheme; each family's *main* function defines one
            pass's sorting attribute (sub-functions are not used — SN has
            no notion of block hierarchies).
        matcher: the resolve/match function.
        window: SN window size ``w``.
    """

    scheme: BlockingScheme
    matcher: WeightedMatcher
    window: int = 15

    def sort_attribute(self, family: str) -> str:
        description = self.scheme.main_function(family).description
        return description.split(".", 1)[0]


class MrsnMapper(Mapper):
    """Key each entity by the pass's sorting key; replicate boundary
    entities into the succeeding partition (RepSN)."""

    def __init__(
        self,
        sort_attribute: str,
        boundaries: Sequence[Tuple[str, str]],
        replicate: Set[int],
    ) -> None:
        self._sort_attribute = sort_attribute
        self._boundaries = list(boundaries)  # partition upper bounds
        self._replicate = replicate  # entity ids to copy forward

    def map(self, record: Entity, context: TaskContext) -> None:
        sort_key = block_sort_key(record, self._sort_attribute)
        partition = bisect_right(self._boundaries, sort_key)
        context.emit((partition, sort_key, False), record)
        if record.id in self._replicate and partition + 1 <= len(self._boundaries):
            context.emit((partition + 1, sort_key, True), record)


class MrsnPartitioner(Partitioner):
    """Range partitioning: the partition index is baked into the key."""

    def partition(self, key: MrsnKey, num_reduce_tasks: int) -> int:
        return min(key[0], num_reduce_tasks - 1)


class MrsnReducer(Reducer):
    """Slide the SN window over the task's sorted range."""

    def __init__(self, config: MrsnConfig) -> None:
        self._config = config
        self._ordered: List[Tuple[Entity, bool]] = []

    def reduce(
        self, key: MrsnKey, values: Sequence[Entity], context: TaskContext
    ) -> None:
        # Groups arrive in key order: (partition, sort key, replica flag);
        # replica=False sorts after True only within equal sort keys, which
        # is irrelevant because replicas always carry *smaller* sort keys
        # than every non-replica of the partition.
        _, _, is_replica = key
        for entity in values:
            context.charge(context.cost_model.read_record)
            self._ordered.append((entity, is_replica))

    def cleanup(self, context: TaskContext) -> None:
        config = self._config
        matcher = config.matcher
        window = config.window
        ordered = self._ordered
        context.charge(context.cost_model.sort_cost(len(ordered)))
        for i in range(len(ordered)):
            entity_i, replica_i = ordered[i]
            for j in range(i + 1, min(len(ordered), i + window)):
                entity_j, replica_j = ordered[j]
                if replica_i and replica_j:
                    continue  # both belong to the preceding partition
                if entity_i.id == entity_j.id:
                    continue  # an entity next to its own replica
                context.charge(
                    context.cost_model.compare
                    * matcher.comparison_cost_factor(entity_i, entity_j)
                )
                if matcher.is_match(entity_i, entity_j):
                    # Plain MR jobs commit reducer output only when the
                    # task completes — no incremental α-flushing here, so
                    # the pair becomes *available* at task end (see
                    # MrsnResult's availability semantics).
                    context.write(pair_key(entity_i.id, entity_j.id))


@dataclass
class MrsnResult:
    """Outcome of a multi-pass MR-SN run."""

    dataset: Dataset
    jobs: List[JobResult]
    duplicate_events: List[Event]

    @property
    def total_time(self) -> float:
        return self.jobs[-1].end_time if self.jobs else 0.0

    @property
    def found_pairs(self) -> Set[Pair]:
        return {event.payload for event in self.duplicate_events}


class MultiPassMRSN:
    """Driver: one sequential MapReduce job per blocking pass."""

    def __init__(self, config: MrsnConfig, cluster: Cluster) -> None:
        self.config = config
        self.cluster = cluster

    def run(self, dataset: Dataset) -> MrsnResult:
        """Run every pass; pass p + 1 starts when pass p ends."""
        jobs: List[JobResult] = []
        start_time = 0.0
        for family in self.config.scheme.family_order:
            job_result = self._run_pass(dataset, family, start_time)
            jobs.append(job_result)
            start_time = job_result.end_time
        events = _first_discoveries(jobs)
        return MrsnResult(dataset=dataset, jobs=jobs, duplicate_events=events)

    # ------------------------------------------------------------------

    def _run_pass(self, dataset: Dataset, family: str, start_time: float) -> JobResult:
        sort_attribute = self.config.sort_attribute(family)
        boundaries, replicate = self._plan_partitions(dataset, sort_attribute)
        job = MapReduceJob(
            mapper_factory=lambda: MrsnMapper(sort_attribute, boundaries, replicate),
            reducer_factory=lambda: MrsnReducer(self.config),
            partitioner=MrsnPartitioner(),
            # No α: a plain MR job writes one output file per reduce task,
            # readable only once the task finishes.
            name=f"mrsn-pass-{family}",
        )
        return self.cluster.run_job(job, dataset.entities, start_time=start_time)

    def _plan_partitions(
        self, dataset: Dataset, sort_attribute: str
    ) -> Tuple[List[Tuple[str, str]], Set[int]]:
        """The original's analysis phase: derive range boundaries that
        split the sorted order evenly over the reduce tasks, and mark the
        ``window - 1`` entities before each boundary for replication."""
        num_tasks = self.cluster.num_reduce_tasks
        ordered = sorted(
            dataset.entities, key=lambda e: (block_sort_key(e, sort_attribute), e.id)
        )
        n = len(ordered)
        boundaries: List[Tuple[str, str]] = []
        replicate: Set[int] = set()
        for task in range(1, num_tasks):
            cut = task * n // num_tasks
            if cut <= 0 or cut >= n:
                continue
            # Boundary = the first key of the next partition; the mapper's
            # bisect_right sends keys >= boundary to that partition.
            boundaries.append(block_sort_key(ordered[cut], sort_attribute))
            for position in range(max(0, cut - self.config.window + 1), cut):
                replicate.add(ordered[position].id)
        return boundaries, replicate


def _first_discoveries(jobs: Sequence[JobResult]) -> List[Event]:
    """Merge all passes' results, first *availability* per pair.

    A pair's availability time is the close time of the output file that
    contains it — i.e. its reduce task's end.  This is the semantics the
    paper ascribes to fixed parallel ER algorithms: results only exist
    once tasks run to completion.
    """
    seen: Set[Pair] = set()
    merged: List[Event] = []
    availabilities: List[Tuple[float, Pair]] = []
    for job in jobs:
        for output_file in job.output_files:
            for pair in output_file.records:
                availabilities.append((output_file.close_time, pair))
    for time, pair in sorted(availabilities):
        if pair not in seen:
            seen.add(pair)
            merged.append(Event(time=time, kind="duplicate", payload=pair))
    return merged


__all__ = ["MrsnConfig", "MultiPassMRSN", "MrsnResult"]
