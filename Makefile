# Common developer targets.

.PHONY: install test bench examples lint all

install:
	pip install -e . || python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

examples:
	@for ex in examples/*.py; do echo "== $$ex"; python $$ex > /dev/null || exit 1; done; echo "all examples OK"

all: test bench
