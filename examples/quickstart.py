"""Quickstart: progressively resolve a publication dataset.

Generates a CiteSeerX-like dataset with planted duplicates, runs the
two-job parallel progressive ER pipeline on a simulated 10-machine Hadoop
cluster, and prints how duplicate recall grows over (virtual) time.

Run:  python examples/quickstart.py
"""

from repro import (
    Cluster,
    ProgressiveER,
    citeseer_config,
    make_citeseer,
    recall_curve,
    transitive_closure,
)


def main() -> None:
    # 1. A dataset with ground truth (stands in for the CiteSeerX dump).
    dataset = make_citeseer(2000, seed=7)
    print(f"dataset: {len(dataset)} entities, {dataset.num_true_pairs} duplicate pairs")

    # 2. The paper's CiteSeerX setup: Table II blocking, SN + hint, weighted
    #    edit-distance matcher.  One call runs Job 1 (progressive blocking +
    #    statistics), schedule generation, and Job 2 (resolution).
    approach = ProgressiveER(citeseer_config(), Cluster(machines=10))
    result = approach.run(dataset)

    # 3. Progressiveness: recall as a function of execution time.
    curve = recall_curve(result.duplicate_events, dataset, end_time=result.total_time)
    print(f"\nschedule: {result.schedule.num_trees} trees, "
          f"{result.schedule.num_blocks} blocks over "
          f"{result.schedule.num_tasks} reduce tasks")
    print(f"total virtual time: {result.total_time:,.0f} cost units\n")
    print("time        recall")
    for i in range(1, 11):
        t = result.total_time * i / 10
        print(f"{t:10,.0f}  {curve.recall_at(t):.3f}")
    print(f"\nfinal recall: {curve.final_recall:.3f}")

    # 4. Optional clustering step: transitive closure of found pairs.
    clusters = transitive_closure(result.found_pairs)
    largest = max(clusters, key=len) if clusters else []
    print(f"clusters found: {len(clusters)} (largest has {len(largest)} records)")


if __name__ == "__main__":
    main()
