"""Scenario: diagnosing a progressive run like a cluster operator.

Beyond the recall curve, an operator wants to know *why* a run behaves the
way it does: was the cluster busy, did one reduce task straggle, which
blocking keys caused skew?  This example profiles the dataset, runs the
pipeline, and prints the diagnostics: an ASCII recall chart, reduce-task
utilization, a Gantt view, and the schedule's shape.

Run:  python examples/cluster_diagnostics.py
"""

from repro import Cluster, ProgressiveER, make_citeseer
from repro.core import citeseer_config
from repro.similarity import citeseer_matcher
from repro.data import format_profile, profile_dataset, suggest_blocking_order
from repro.evaluation import (
    CurveRun,
    ascii_chart,
    ascii_gantt,
    load_imbalance,
    recall_curve,
    reduce_utilization,
)

MACHINES = 6


def main() -> None:
    dataset = make_citeseer(1000, seed=7)
    # One caching matcher: the two strategy runs share pair comparisons.
    matcher = citeseer_matcher(cache=True)

    # 1. Know your data before blocking it.
    profile = profile_dataset(dataset, prefix_lengths=(2, 3))
    print(format_profile(profile))
    print("\nsuggested dominance order:",
          " > ".join(suggest_blocking_order(profile)), "\n")

    # 2. Run the pipeline (ours vs the NoSplit variant, to see why the
    #    split mechanism matters for utilization).
    results = {}
    for strategy in ("ours", "nosplit"):
        approach = ProgressiveER(
            citeseer_config(matcher=matcher), Cluster(MACHINES),
            strategy=strategy,
        )
        results[strategy] = approach.run(dataset)

    runs = [
        CurveRun(
            label=name,
            curve=recall_curve(
                r.duplicate_events, dataset, end_time=r.total_time
            ),
            result=r,
        )
        for name, r in results.items()
    ]
    horizon = max(r.total_time for r in results.values())
    print(ascii_chart(runs, horizon=horizon, width=64, height=14,
                      title="recall vs time"))
    print()

    # 3. Scheduling diagnostics.
    for name, result in results.items():
        job = result.job2
        print(
            f"{name:8s} trees={result.schedule.num_trees:4d} "
            f"blocks={result.schedule.num_blocks:4d} "
            f"reduce utilization={reduce_utilization(job):.2f} "
            f"imbalance={load_imbalance(job):.2f} "
            f"total={job.end_time:,.0f}"
        )

    # 4. Gantt of the winner's resolution job (reduce rows only, abridged).
    gantt = ascii_gantt(results["ours"].job2, width=56)
    reduce_rows = [ln for ln in gantt.splitlines() if "reduce" in ln or "=" in ln]
    print("\nours — reduce-task timeline:")
    print("\n".join(reduce_rows))


if __name__ == "__main__":
    main()
