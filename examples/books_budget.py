"""Scenario: cleaning a book catalog under a hard resolution budget.

A small enterprise rents cloud capacity and caps each cleaning run at a
fixed cost budget (paper Section I's motivation).  The progressive pipeline
flushes results to a new file every α cost units, so the consumer simply
merges "all completely written files up to that time" (Section III-B) when
the budget runs out.

This example runs the OL-Books setup (PSNM mechanism), stops consuming at
several budgets, and reports the recall and Equation-1 quality each budget
buys — plus what the same budgets buy with the Basic baseline.

Run:  python examples/books_budget.py
"""

from repro import BasicConfig, PSNM, books_scheme, make_books
from repro.core import books_config
from repro.core.config import linear_weights
from repro.evaluation import ExperimentRun, RunSpec, quality
from repro.mapreduce import results_available_at
from repro.similarity import books_matcher

MACHINES = 10


def main() -> None:
    dataset = make_books(3000, seed=11)
    matcher = books_matcher(cache=True)
    true_pairs = dataset.true_pairs

    ours = ExperimentRun(
        RunSpec(
            dataset, books_config(matcher=matcher),
            machines=MACHINES, label="ours",
        )
    ).run()
    basic = ExperimentRun(
        RunSpec(
            dataset,
            BasicConfig(
                scheme=books_scheme(),
                matcher=matcher,
                mechanism=PSNM(),
                window=15,
                popcorn_threshold=0.0005,
            ),
            machines=MACHINES,
            label="basic",
        )
    ).run()

    print(f"{len(dataset)} books, {len(true_pairs)} true duplicate pairs, "
          f"{MACHINES} machines\n")
    print("budget      ours: merged pairs  recall    basic: merged pairs  recall")
    full = ours.total_time
    for fraction in (0.2, 0.4, 0.6, 0.8, 1.0):
        budget = full * fraction
        ours_pairs = set(results_available_at(ours.result.job2, budget))
        basic_pairs = set(results_available_at(basic.result.job, budget))
        ours_recall = len(ours_pairs & true_pairs) / len(true_pairs)
        basic_recall = len(basic_pairs & true_pairs) / len(true_pairs)
        print(
            f"{budget:10,.0f}  {len(ours_pairs):12d}       {ours_recall:.3f}"
            f"     {len(basic_pairs):12d}        {basic_recall:.3f}"
        )

    # Equation 1: weighted quality over ten sampled cost values.
    samples = [full * (i + 1) / 10 for i in range(10)]
    q_ours = quality(ours.result.duplicate_events, dataset, samples, linear_weights)
    q_basic = quality(basic.result.duplicate_events, dataset, samples, linear_weights)
    print(f"\nQty (Equation 1, linear weights): ours={q_ours:.3f}  basic={q_basic:.3f}")


if __name__ == "__main__":
    main()
