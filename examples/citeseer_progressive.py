"""Scenario: pay-as-you-go cleaning of a publication catalog.

A data team continuously ingests crawled publication records and wants
analysis-ready data as early as possible.  This example contrasts three
ways of spending the same cluster:

* Basic with an aggressive popcorn threshold  — fast but plateaus low;
* Basic run to completion ("Basic F")         — exhaustive but slow;
* our parallel progressive approach           — front-loads the duplicates.

It reproduces Figure 8's story at laptop scale and prints the recall each
strategy has reached at a series of checkpoints.

Run:  python examples/citeseer_progressive.py
"""

from repro import BasicConfig, SortedNeighborHint, citeseer_scheme, make_citeseer
from repro.core import citeseer_config
from repro.evaluation import (
    ExperimentRun,
    RunSpec,
    format_curves,
    format_final_summary,
    sample_times,
)
from repro.similarity import citeseer_matcher

MACHINES = 10


def main() -> None:
    dataset = make_citeseer(2000, seed=7)
    # One caching matcher shared across runs: real similarity work is done
    # once, while every run still pays its own *virtual* cost.
    matcher = citeseer_matcher(cache=True)

    print(f"resolving {len(dataset)} records on {MACHINES} machines...\n")

    runs = [
        ExperimentRun(
            RunSpec(
                dataset, citeseer_config(matcher=matcher),
                machines=MACHINES, label="ours",
            )
        ).run()
    ]
    for threshold, label in ((0.04, "basic 0.04"), (0.001, "basic 0.001"), (None, "basic F")):
        config = BasicConfig(
            scheme=citeseer_scheme(),
            matcher=matcher,
            mechanism=SortedNeighborHint(),
            window=15,
            popcorn_threshold=threshold,
        )
        runs.append(
            ExperimentRun(
                RunSpec(dataset, config, machines=MACHINES, label=label)
            ).run()
        )

    horizon = min(run.total_time for run in runs)
    print(format_curves(runs, sample_times(horizon, points=10),
                        title="duplicate recall vs execution time"))
    print()
    print(format_final_summary(runs, title="end-of-run summary"))
    print()

    ours = runs[0]
    half = horizon / 2
    best_basic = max(runs[1:], key=lambda r: r.curve.recall_at(half))
    print(
        f"at t={half:,.0f}: ours has {ours.curve.recall_at(half):.0%} recall, "
        f"the best Basic variant ({best_basic.label}) has "
        f"{best_basic.curve.recall_at(half):.0%} — stop whenever the quality "
        "is good enough and keep the savings."
    )


if __name__ == "__main__":
    main()
