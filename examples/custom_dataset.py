"""Scenario: resolving your own dataset with a custom scheme and matcher.

Everything in the pipeline is pluggable: this example builds the paper's
Table I toy people dataset by hand, defines the paper's X1 (name-prefix)
and Y1 (state) blocking functions plus a sub-blocking function, a custom
weighted matcher, and runs both the progressive pipeline and the Basic
baseline on it — then round-trips the dataset through CSV.

Run:  python examples/custom_dataset.py
"""

import tempfile
from pathlib import Path

from repro import (
    AttributeRule,
    BasicConfig,
    BlockingScheme,
    Cluster,
    Dataset,
    Entity,
    ProgressiveER,
    SortedNeighborHint,
    WeightedMatcher,
    prefix_function,
)
from repro.core import ApproachConfig, LevelPolicy


def build_people() -> Dataset:
    """The paper's Table I toy dataset (with its ground-truth clusters)."""
    rows = [
        (1, "John Lopez", "HI"), (2, "John Lopez", "HI"), (3, "John Lopez", "AZ"),
        (4, "Charles Andrews", "LA"), (5, "Gharles Andrews", "LA"),
        (6, "Mary Gibson", "AZ"), (7, "Chloe Matthew", "AZ"),
        (8, "William Martin", "AZ"), (9, "Joey Brown", "LA"),
    ]
    clusters = {1: 0, 2: 0, 3: 0, 4: 1, 5: 1, 6: 2, 7: 3, 8: 4, 9: 5}
    entities = [
        Entity(id=i, attrs={"name": name, "state": state})
        for i, name, state in rows
    ]
    return Dataset(entities=entities, clusters=clusters, name="toy-people")


def main() -> None:
    dataset = build_people()

    # Table I's functions: X1 = first two name characters (refined by a
    # 4-char sub-function), Y1 = state.  Dict order = dominance: X1 > Y1.
    scheme = BlockingScheme(
        families={
            "X": [
                prefix_function("X", 1, "name", 2),
                prefix_function("X", 2, "name", 4),
            ],
            "Y": [prefix_function("Y", 1, "state", 2)],
        }
    )
    matcher = WeightedMatcher(
        rules=[
            AttributeRule("name", weight=0.8, comparator="edit"),
            AttributeRule("state", weight=0.2, comparator="exact"),
        ],
        threshold=0.75,
    )
    config = ApproachConfig(
        scheme=scheme,
        matcher=matcher,
        mechanism=SortedNeighborHint(),
        levels=LevelPolicy(root_window=8, mid_window=6, leaf_window=4),
        train_fraction=1.0,  # tiny dataset: train the estimator on all of it
    )

    result = ProgressiveER(config, Cluster(machines=2)).run(dataset)
    print("found duplicate pairs:", sorted(result.found_pairs))
    print("ground truth:         ", sorted(dataset.true_pairs))
    found_true = result.found_pairs & dataset.true_pairs
    print(f"recall: {len(found_true)}/{dataset.num_true_pairs}")

    # The Basic baseline runs on the same custom pieces.
    basic = BasicConfig(scheme=scheme, matcher=matcher,
                        mechanism=SortedNeighborHint(), window=8)
    from repro import BasicER

    basic_result = BasicER(basic, Cluster(machines=2)).run(dataset)
    print("basic found:          ", sorted(basic_result.found_pairs))

    # CSV round trip for persistence.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "people.csv"
        dataset.to_csv(path)
        reloaded = Dataset.from_csv(path, name="toy-people")
        assert reloaded.true_pairs == dataset.true_pairs
        print(f"\nround-tripped {len(reloaded)} records through {path.name}")


if __name__ == "__main__":
    main()
